// Package gateway is the sharded front tier of the briefing service: an
// HTTP proxy that consistent-hash routes briefing requests by page domain
// across a fleet of wbserve backends, with per-backend bounded connection
// pools, circuit breakers, health probing, and fleet-wide hot model
// reload.
//
// Routing keys on the same domain extraction the backends' cache policy
// uses (briefcache.SrcDomain of the ?src= query parameter), so one
// domain's pages concentrate on one backend — its content-addressed cache
// and any per-domain policy see the domain's whole request stream instead
// of 1/N of it. Requests without a ?src= attribution key on the body hash,
// which still sends repeat posts of one page to one backend's cache.
//
// Liveness is layered over the static ring: a backend that fails
// Threshold consecutive exchanges is ejected (breaker opens, its keys fail
// over to the next candidate on the ring), probed against /healthz after a
// cooldown, and readmitted once probes pass — at which point its keys
// route home again. The ring itself never changes, so a flapping backend
// cannot churn the whole keyspace.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"webbrief/internal/briefcache"
)

// DefaultMaxBodyBytes mirrors the serving tier's request body ceiling: the
// gateway refuses oversized pages itself rather than shipping them to a
// backend that would refuse them anyway.
const DefaultMaxBodyBytes = 4 << 20

// Config configures a Gateway. Zero values get defaults from
// withDefaults.
type Config struct {
	Backends []string // backend addresses, "host:port" or "http://host:port"

	VNodes             int           // virtual nodes per backend on the ring (0 = DefaultVNodes)
	MaxConnsPerBackend int           // concurrent relays per backend (0 = 32)
	Attempts           int           // max distinct backends tried per request (0 = all)
	BreakerThreshold   int           // consecutive failures that eject a backend (0 = 3)
	BreakerCooldown    time.Duration // ejection → first readmission probe (0 = 500ms)
	ProbeInterval      time.Duration // health probe cadence for ejected backends (0 = 100ms)
	ProbeSuccesses     int           // consecutive clean probes to readmit (0 = 2)
	ProbeTimeout       time.Duration // per-probe deadline (0 = 2s)
	Timeout            time.Duration // per-request deadline, all attempts included (0 = none)
	ReloadTimeout      time.Duration // per-backend deadline driving /admin/reload (0 = 60s)
	MaxBodyBytes       int64         // request body limit (0 = DefaultMaxBodyBytes)
	RetryAfter         time.Duration // Retry-After hint on 503s (0 = 1s)

	// Client overrides the HTTP client used for relays and probes (tests).
	Client *http.Client
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxConnsPerBackend <= 0 {
		c.MaxConnsPerBackend = 32
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ReloadTimeout <= 0 {
		c.ReloadTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// backend is one wbserve process behind the gateway.
type backend struct {
	name  string        // canonical host:port — the ring member name
	url   string        // http://host:port
	slots chan struct{} // bounded connection pool: one token per in-flight relay
	br    *breaker

	requests   atomic.Int64 // relay attempts sent to this backend
	errors     atomic.Int64 // attempts that failed
	generation atomic.Int64 // model generation last reported by a reload (0 = unknown)
}

// Gateway is the sharded briefing front tier. Mount it directly (it is an
// http.Handler routing /brief, /healthz, /metrics and /admin/reload).
type Gateway struct {
	cfg      Config
	metrics  *Metrics
	ring     *Ring
	backends map[string]*backend
	names    []string // sorted — the deterministic iteration order everywhere
	mux      *http.ServeMux
	client   *http.Client

	ready        atomic.Bool
	fleetGen     atomic.Int64 // min generation across backends after a fleet reload
	fleetReloads atomic.Int64
	reloading    atomic.Bool // one fleet reload drive at a time

	shutdownCh chan struct{}
	probeDone  chan struct{}
}

// New builds a Gateway over the configured backend fleet and starts its
// health prober.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	names := make([]string, 0, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		name := canonicalBackend(raw)
		if name == "" {
			return nil, fmt.Errorf("gateway: bad backend address %q", raw)
		}
		names = append(names, name)
	}
	ring := NewRing(names, cfg.VNodes)
	if ring.Size() == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	g := &Gateway{
		cfg:        cfg,
		metrics:    &Metrics{},
		ring:       ring,
		backends:   make(map[string]*backend, ring.Size()),
		names:      ring.Backends(),
		mux:        http.NewServeMux(),
		client:     cfg.Client,
		shutdownCh: make(chan struct{}),
		probeDone:  make(chan struct{}),
	}
	if g.client == nil {
		g.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: cfg.MaxConnsPerBackend,
		}}
	}
	for _, name := range g.names {
		g.backends[name] = &backend{
			name:  name,
			url:   "http://" + name,
			slots: make(chan struct{}, cfg.MaxConnsPerBackend),
			br: &breaker{
				threshold:      cfg.BreakerThreshold,
				cooldown:       cfg.BreakerCooldown,
				probeSuccesses: cfg.ProbeSuccesses,
			},
		}
	}
	g.ready.Store(true)
	g.mux.HandleFunc("/brief", g.handleBrief)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/admin/reload", g.handleReload)
	go g.probeLoop()
	return g, nil
}

// canonicalBackend reduces a backend flag value to its host:port ring
// name: scheme and trailing path stripped, everything else untouched.
func canonicalBackend(raw string) string {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Handler returns the gateway as an http.Handler.
func (g *Gateway) Handler() http.Handler { return g }

// Metrics exposes the counter set (tests, embedding servers).
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Ring exposes the routing ring (tests, operator tooling).
func (g *Gateway) Ring() *Ring { return g.ring }

// BeginShutdown flips /healthz and /brief to draining and stops the health
// prober. In-flight relays finish normally.
func (g *Gateway) BeginShutdown() {
	if g.ready.CompareAndSwap(true, false) {
		close(g.shutdownCh)
		<-g.probeDone
	}
}

// RouteKey computes the consistent-hash key for one request: the page's
// source domain when the client attributes it (?src=, same extraction as
// the backend cache's policy key), else a hash of the posted body — repeat
// posts of one page still land on one backend's cache.
func RouteKey(rawQuery string, src string, body []byte) string {
	if rawQuery != "" {
		if d := briefcache.SrcDomain(src); d != "" {
			return "domain:" + d
		}
	}
	return "body:" + strconv.FormatUint(hashKey(string(body)), 16)
}

// handleBrief is the proxy path: validate, pick the key's candidate
// backends off the ring, and relay with failover.
func (g *Gateway) handleBrief(w http.ResponseWriter, r *http.Request) {
	m := g.metrics
	m.Requests.Add(1)

	if !g.ready.Load() {
		m.Draining.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(g.cfg.RetryAfter))
		http.Error(w, "gateway is draining", http.StatusServiceUnavailable)
		return
	}
	if r.Method != http.MethodPost {
		m.BadMethod.Add(1)
		http.Error(w, "POST the page HTML as the request body", http.StatusMethodNotAllowed)
		return
	}
	if r.ContentLength > g.cfg.MaxBodyBytes {
		m.TooLarge.Add(1)
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", g.cfg.MaxBodyBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		m.BadRequest.Add(1)
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		m.TooLarge.Add(1)
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", g.cfg.MaxBodyBytes),
			http.StatusRequestEntityTooLarge)
		return
	}

	ctx := r.Context()
	if g.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.Timeout)
		defer cancel()
	}

	var src string
	if r.URL.RawQuery != "" {
		src = r.URL.Query().Get("src")
	}
	key := RouteKey(r.URL.RawQuery, src, body)
	g.proxy(w, ctx, r, body, g.ring.Candidates(key, g.cfg.Attempts))
}

// proxy relays one validated request across the key's candidate backends
// in ring order. Candidates with an open breaker are skipped (rerouted);
// candidates at their connection cap are spilled past without blocking;
// a retryable failure moves to the next candidate. If every candidate was
// at capacity, the request waits (under its deadline) for the preferred
// one rather than failing — bounded pools shed load by queueing at the
// gateway, not by erroring.
func (g *Gateway) proxy(w http.ResponseWriter, ctx context.Context, r *http.Request, body []byte, cands []string) {
	m := g.metrics
	var fallback *backend // first routable candidate, for the all-busy wait
	attempts := 0
	for _, name := range cands {
		b := g.backends[name]
		if !b.br.Allow(time.Now()) {
			m.Rerouted.Add(1)
			continue
		}
		if fallback == nil {
			fallback = b
		}
		select {
		case b.slots <- struct{}{}:
		default:
			continue // at its connection cap; spill to the next candidate
		}
		attempts++
		relayed := g.attemptOn(w, ctx, b, r, body)
		<-b.slots
		if relayed {
			return
		}
		if ctx.Err() != nil {
			break
		}
	}
	if attempts == 0 && fallback != nil && ctx.Err() == nil {
		select {
		case fallback.slots <- struct{}{}:
			attempts++
			relayed := g.attemptOn(w, ctx, fallback, r, body)
			<-fallback.slots
			if relayed {
				return
			}
		case <-ctx.Done():
		}
	}

	if err := ctx.Err(); err != nil {
		g.failCtx(w, err)
		return
	}
	if attempts > 0 {
		m.BackendFailure.Add(1)
		http.Error(w, "all briefing backends failed", http.StatusBadGateway)
		return
	}
	m.NoBackend.Add(1)
	w.Header().Set("Retry-After", retryAfterSeconds(g.cfg.RetryAfter))
	http.Error(w, "no briefing backend available", http.StatusServiceUnavailable)
}

// retryableStatus reports whether a backend status should fail over to the
// next candidate: the backend is broken (500/502), draining (503), or
// shedding (429) — another backend may well answer. Everything else
// (success, client errors, the backend's own 504) relays as-is.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusTooManyRequests:
		return true
	}
	return false
}

// attemptOn relays the request once on b, reporting whether a response was
// written (true ends the request; false means a retryable failure and the
// caller moves on). Every call bumps backend_requests_total and exactly
// one of its two outcomes.
func (g *Gateway) attemptOn(w http.ResponseWriter, ctx context.Context, b *backend, r *http.Request, body []byte) bool {
	m := g.metrics
	m.BackendRequests.Add(1)
	b.requests.Add(1)

	url := b.url + "/brief"
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		g.attemptFailed(b, true)
		return false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		// A failure after the client's own deadline or disconnect is the
		// client's, not the backend's — count the attempt, spare the breaker.
		g.attemptFailed(b, ctx.Err() == nil)
		return false
	}
	defer resp.Body.Close()
	if retryableStatus(resp.StatusCode) {
		io.Copy(io.Discard, resp.Body)
		g.attemptFailed(b, true)
		return false
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		g.attemptFailed(b, ctx.Err() == nil)
		return false
	}

	g.attemptOK(b)
	m.Proxied.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(out)
	return true
}

// attemptOK settles one attempt as clean, driving the breaker (a success
// may readmit a half-open backend).
func (g *Gateway) attemptOK(b *backend) {
	g.metrics.BackendOK.Add(1)
	if b.br.Success() {
		g.metrics.Readmissions.Add(1)
		g.metrics.Rebalances.Add(1)
	}
}

// attemptFailed settles one attempt as failed. blame drives the breaker;
// failures caused by the client's own deadline or disconnect count the
// attempt without penalising the backend.
func (g *Gateway) attemptFailed(b *backend, blame bool) {
	g.metrics.BackendError.Add(1)
	b.errors.Add(1)
	if blame && b.br.Fail(time.Now()) {
		g.metrics.Ejections.Add(1)
		g.metrics.Rebalances.Add(1)
	}
}

// failCtx maps a context error to its response: 504 for an expired
// deadline; a client that disconnected gets nothing (nginx's 499 case).
func (g *Gateway) failCtx(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		g.metrics.Timeout.Add(1)
		http.Error(w, "briefing deadline exceeded", http.StatusGatewayTimeout)
		return
	}
	g.metrics.Canceled.Add(1)
}

// handleHealthz aggregates fleet health: 200 while the gateway is ready
// and at least one backend is routable (breaker not open), 503 otherwise.
// The body lists every backend's breaker state.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type backendHealth struct {
		Name    string `json:"name"`
		Breaker string `json:"breaker"`
	}
	type health struct {
		Status   string          `json:"status"`
		Backends int             `json:"backends"`
		Routable int             `json:"routable"`
		Fleet    []backendHealth `json:"fleet"`
	}
	h := health{Status: "ok", Backends: len(g.names)}
	for _, name := range g.names {
		st := g.backends[name].br.State()
		if st != BreakerOpen {
			h.Routable++
		}
		h.Fleet = append(h.Fleet, backendHealth{Name: name, Breaker: st.String()})
	}
	code := http.StatusOK
	if h.Routable < h.Backends {
		h.Status = "degraded"
	}
	if h.Routable == 0 {
		h.Status = "unhealthy"
		code = http.StatusServiceUnavailable
	}
	if !g.ready.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h)
}

// handleMetrics serves the counter snapshot as JSON.
func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(g.snapshot())
}

// BackendReload is one backend's row in a fleet reload report: its new
// model generation, or the error that kept it on its old one.
type BackendReload struct {
	Backend    string `json:"backend"`
	Generation int64  `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
}

// FleetReloadReport summarises one rolling fleet reload drive.
type FleetReloadReport struct {
	FleetGeneration int64           `json:"fleet_generation"`
	Reloaded        int             `json:"reloaded"`
	Backends        []BackendReload `json:"backends"`
}

// ErrReloadInProgress is returned by FleetReload when another drive holds
// the fleet: reloads roll one backend at a time, so two concurrent drives
// would double the fleet's warming capacity loss.
var ErrReloadInProgress = errors.New("a fleet reload is already in progress")

// FleetReload drives a rolling fleet-wide hot model reload: each backend's
// /admin/reload in sorted order, one at a time, so at most one backend is
// warming a shadow pool while the rest serve at full capacity. The report
// carries each backend's new generation (or error) and the fleet
// generation — the minimum across backends that have ever reloaded. This
// is the SIGHUP path of cmd/wbgate; POST /admin/reload is the HTTP form.
func (g *Gateway) FleetReload(ctx context.Context) (FleetReloadReport, error) {
	if !g.reloading.CompareAndSwap(false, true) {
		return FleetReloadReport{}, ErrReloadInProgress
	}
	defer g.reloading.Store(false)

	rep := FleetReloadReport{Backends: make([]BackendReload, 0, len(g.names))}
	for _, name := range g.names {
		b := g.backends[name]
		gen, err := g.reloadBackend(ctx, b)
		if err != nil {
			rep.Backends = append(rep.Backends, BackendReload{Backend: name, Error: err.Error()})
			continue
		}
		b.generation.Store(gen)
		rep.Backends = append(rep.Backends, BackendReload{Backend: name, Generation: gen})
		rep.Reloaded++
	}
	g.fleetReloads.Add(1)
	g.fleetGen.Store(g.minGeneration())
	rep.FleetGeneration = g.fleetGen.Load()
	return rep, nil
}

// handleReload is the HTTP form of FleetReload. Like the backend's own
// endpoint, it touches none of the /brief outcome counters: admin traffic
// is not briefing traffic.
func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to reload the fleet", http.StatusMethodNotAllowed)
		return
	}
	rep, err := g.FleetReload(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	code := http.StatusOK
	if rep.Reloaded == 0 {
		code = http.StatusBadGateway
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(rep)
}

// reloadBackend POSTs one backend's /admin/reload and decodes the new
// generation.
func (g *Gateway) reloadBackend(ctx context.Context, b *backend) (int64, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ReloadTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/admin/reload", nil)
	if err != nil {
		return 0, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("backend %s: reload status %d: %s", b.name, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var out struct {
		Generation int64 `json:"generation"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return 0, fmt.Errorf("backend %s: reload response: %w", b.name, err)
	}
	return out.Generation, nil
}

// minGeneration is the fleet generation: the minimum model generation
// across backends that have reported one (0 while any backend has never
// reloaded through this gateway).
func (g *Gateway) minGeneration() int64 {
	var minGen int64
	for i, name := range g.names {
		gen := g.backends[name].generation.Load()
		if i == 0 || gen < minGen {
			minGen = gen
		}
	}
	return minGen
}

// probeLoop is the re-admission prober: every ProbeInterval it probes each
// non-closed backend's /healthz (once past its breaker cooldown) and feeds
// the result to the breaker. It exits on shutdown.
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.shutdownCh:
			return
		case <-ticker.C:
		}
		for _, name := range g.names {
			b := g.backends[name]
			if b.br.State() == BreakerClosed {
				continue
			}
			if !b.br.Allow(time.Now()) {
				continue // still cooling down
			}
			g.metrics.Probes.Add(1)
			if g.probeBackend(b) {
				if b.br.Success() {
					g.metrics.Readmissions.Add(1)
					g.metrics.Rebalances.Add(1)
				}
			} else {
				b.br.Fail(time.Now())
			}
		}
	}
}

// probeBackend GETs one backend's /healthz under the probe deadline.
func (g *Gateway) probeBackend(b *backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// retryAfterSeconds renders a Retry-After header value, minimum 1s.
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
