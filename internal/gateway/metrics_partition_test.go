package gateway

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// TestGatewayOutcomeFieldsReconcile verifies at run time what the wbcheck
// metricpart pass verifies statically: requestOutcomeFields names exactly
// the atomic.Int64 outcome counters of the gateway's Metrics, and the
// Responses snapshot carries one field per registered outcome — nothing
// missing, nothing extra. A drift here means the gateway's /metrics sums
// would stop reconciling with requests_total.
func TestGatewayOutcomeFieldsReconcile(t *testing.T) {
	checkOutcomePartition(t, requestOutcomeFields, "requestOutcomeFields", "Responses", reflect.TypeOf(metricsSnapshot{}))
}

// TestBackendOutcomeFieldsReconcile is the same three-way check for the
// backend_requests_total per-attempt partition: backendOutcomeFields, the
// Metrics counters, and the BackendOutcomes snapshot block must agree
// exactly.
func TestBackendOutcomeFieldsReconcile(t *testing.T) {
	checkOutcomePartition(t, backendOutcomeFields, "backendOutcomeFields", "BackendOutcomes", reflect.TypeOf(metricsSnapshot{}))
}

// checkOutcomePartition verifies one partition registry: every registered
// name is an atomic.Int64 Metrics field, and the named snapshot struct
// carries exactly one field per registered outcome. (Same checker the
// serving tier's partition tests run, over this package's types.)
func checkOutcomePartition(t *testing.T, registry []string, registryName, snapshotField string, container reflect.Type) {
	t.Helper()
	atomicInt64 := reflect.TypeOf(atomic.Int64{})
	metricsType := reflect.TypeOf(Metrics{})

	registered := map[string]bool{}
	for _, name := range registry {
		if registered[name] {
			t.Errorf("%s lists %s twice", registryName, name)
		}
		registered[name] = true
		field, ok := metricsType.FieldByName(name)
		if !ok {
			t.Errorf("%s entry %s is not a Metrics field", registryName, name)
			continue
		}
		if field.Type != atomicInt64 {
			t.Errorf("Metrics.%s is %v, want atomic.Int64", name, field.Type)
		}
	}

	outcomes, ok := container.FieldByName(snapshotField)
	if !ok {
		t.Fatalf("snapshot has no %s field", snapshotField)
	}
	seen := map[string]bool{}
	for i := 0; i < outcomes.Type.NumField(); i++ {
		name := outcomes.Type.Field(i).Name
		seen[name] = true
		if !registered[name] {
			t.Errorf("%s snapshot field %s is not in %s", snapshotField, name, registryName)
		}
	}
	for name := range registered {
		if !seen[name] {
			t.Errorf("registered outcome %s is missing from the %s snapshot", name, snapshotField)
		}
	}
}
