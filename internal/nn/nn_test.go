package nn

import (
	"math"
	"math/rand"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/opt"
	"webbrief/internal/tensor"
)

func TestLinearShapesAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("l", 4, 3, rng)
	tp := ag.NewTape()
	out := l.Forward(tp, tp.Const(tensor.Randn(5, 4, 1, rng)))
	if out.Rows() != 5 || out.Cols() != 3 {
		t.Fatalf("shape %dx%d", out.Rows(), out.Cols())
	}
	if l.OutDim() != 3 {
		t.Fatal("OutDim")
	}
	// Zero input must produce the bias in every row.
	l.B.Value.Data[0] = 7
	tp2 := ag.NewTape()
	out2 := l.Forward(tp2, tp2.Const(tensor.New(2, 4)))
	if out2.Value.At(0, 0) != 7 || out2.Value.At(1, 0) != 7 {
		t.Fatal("bias not applied")
	}
}

func TestEmbeddingLookupAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding("e", 10, 4, rng)
	tp := ag.NewTape()
	out := e.Forward(tp, []int{3, 3, 9})
	if out.Rows() != 3 || out.Cols() != 4 {
		t.Fatal("shape")
	}
	for j := 0; j < 4; j++ {
		if out.Value.At(0, j) != out.Value.At(1, j) {
			t.Fatal("same id must give same vector")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range id should panic")
		}
	}()
	e.Forward(tp, []int{10})
}

func TestLayerNormOutput(t *testing.T) {
	ln := NewLayerNorm("ln", 8)
	tp := ag.NewTape()
	rng := rand.New(rand.NewSource(3))
	out := ln.Forward(tp, tp.Const(tensor.Randn(3, 8, 5, rng)))
	for i := 0; i < 3; i++ {
		var mean float64
		for _, v := range out.Value.Row(i) {
			mean += v
		}
		mean /= 8
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean %v (unit gain, zero bias)", i, mean)
		}
	}
}

func TestBilinearAttentionRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bl := NewBilinear("b", 4, 6, rng)
	tp := ag.NewTape()
	a := tp.Const(tensor.Randn(3, 4, 1, rng))
	b := tp.Const(tensor.Randn(5, 6, 1, rng))
	att := bl.Attention(tp, a, b)
	if att.Rows() != 3 || att.Cols() != 5 {
		t.Fatalf("attention shape %dx%d", att.Rows(), att.Cols())
	}
	for i := 0; i < 3; i++ {
		var s float64
		for _, v := range att.Value.Row(i) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestLSTMShapesAndStatefulness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLSTM("l", 3, 5, rng)
	tp := ag.NewTape()
	x := tp.Const(tensor.Randn(7, 3, 1, rng))
	h := l.Forward(tp, x)
	if h.Rows() != 7 || h.Cols() != 5 {
		t.Fatalf("shape %dx%d", h.Rows(), h.Cols())
	}
	// The LSTM is stateful: feeding the same input twice in a row must give
	// different hidden states (state carries over).
	tp2 := ag.NewTape()
	same := tensor.Full(2, 3, 0.5)
	h2 := l.Forward(tp2, tp2.Const(same))
	diff := 0.0
	for j := 0; j < 5; j++ {
		diff += math.Abs(h2.Value.At(0, j) - h2.Value.At(1, j))
	}
	if diff < 1e-9 {
		t.Fatal("LSTM appears stateless")
	}
}

func TestLSTMForgetBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLSTM("l", 2, 3, rng)
	for j := 0; j < 12; j++ {
		want := 0.0
		if j >= 3 && j < 6 {
			want = 1.0
		}
		if l.B.Value.Data[j] != want {
			t.Fatalf("bias[%d] = %v, want %v", j, l.B.Value.Data[j], want)
		}
	}
}

func TestBiLSTMUsesBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBiLSTM("b", 3, 4, rng)
	if b.OutDim() != 8 {
		t.Fatal("OutDim")
	}
	tp := ag.NewTape()
	// An impulse at the last timestep must influence the backward half of
	// the FIRST output row (information flows right-to-left).
	x := tensor.New(5, 3)
	x.Set(4, 0, 10)
	h1 := b.Forward(tp, tp.Const(x))
	tp2 := ag.NewTape()
	h2 := b.Forward(tp2, tp2.Const(tensor.New(5, 3)))
	bwdChanged := false
	for j := 4; j < 8; j++ {
		if math.Abs(h1.Value.At(0, j)-h2.Value.At(0, j)) > 1e-9 {
			bwdChanged = true
		}
	}
	if !bwdChanged {
		t.Fatal("backward direction does not propagate future context")
	}
	// The forward half of the first row must NOT see the future.
	for j := 0; j < 4; j++ {
		if math.Abs(h1.Value.At(0, j)-h2.Value.At(0, j)) > 1e-9 {
			t.Fatal("forward direction leaked future context")
		}
	}
}

func TestLSTMGradientsFlowToAllParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM("l", 2, 3, rng)
	tp := ag.NewTape()
	x := tp.Const(tensor.Randn(4, 2, 1, rng))
	loss := tp.Sum(l.Forward(tp, x))
	tp.Backward(loss)
	for _, p := range l.Params() {
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("no gradient reached %s", p.Name)
		}
	}
}

// An LSTM must be able to learn a tiny sequence task: output class = first
// token of the sequence (tests long-range memory + the whole training loop).
func TestLSTMLearnsFirstTokenTask(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	emb := NewEmbedding("emb", 4, 8, rng)
	l := NewLSTM("l", 8, 8, rng)
	out := NewLinear("out", 8, 2, rng)
	params := CollectParams(emb, l, out)
	optim := opt.NewAdam(params, 0.02)
	seqs := [][]int{{0, 2, 3, 2}, {1, 2, 3, 2}, {0, 3, 3, 3}, {1, 3, 2, 2}}
	labels := []int{0, 1, 0, 1}
	var loss float64
	for epoch := 0; epoch < 150; epoch++ {
		loss = 0
		for i, s := range seqs {
			tp := ag.NewTape()
			h := l.Forward(tp, emb.Forward(tp, s))
			last := tp.SliceRows(h, len(s)-1, len(s))
			lo := tp.CrossEntropy(out.Forward(tp, last), []int{labels[i]})
			loss += lo.Value.Data[0]
			tp.Backward(lo)
			optim.Step()
		}
	}
	if loss > 0.1 {
		t.Fatalf("LSTM failed to fit first-token task, loss=%v", loss)
	}
}

func TestAttnDecoderTeacherForcingShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewAttnDecoder("d", 12, 6, 8, 10, rng)
	tp := ag.NewTape()
	mem := tp.Const(tensor.Randn(5, 10, 1, rng))
	logits := d.ForwardTeacherForcing(tp, mem, []int{0, 3, 4})
	if logits.Rows() != 3 || logits.Cols() != 12 {
		t.Fatalf("logits shape %dx%d", logits.Rows(), logits.Cols())
	}
}

func TestAttnDecoderGreedyStopsAtEOS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewAttnDecoder("d", 8, 4, 6, 6, rng)
	tp := ag.NewTape()
	mem := tp.Const(tensor.Randn(3, 6, 1, rng))
	out := d.Greedy(tp, mem, 0, 1, 10)
	if len(out) > 10 {
		t.Fatal("exceeded maxLen")
	}
	for _, tok := range out {
		if tok == 1 {
			t.Fatal("EOS leaked into output")
		}
	}
}

// Train a decoder to emit a fixed phrase, then check both greedy and beam
// search recover it and that beam search never underperforms greedy.
func TestDecoderLearnsFixedPhrase(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const bos, eos = 0, 1
	target := []int{5, 3, 7} // the "topic phrase"
	d := NewAttnDecoder("d", 10, 8, 12, 6, rng)
	optim := opt.NewAdam(d.Params(), 0.02)
	memVal := tensor.Randn(4, 6, 1, rng)
	inputs := append([]int{bos}, target...)
	targets := append(append([]int(nil), target...), eos)
	for i := 0; i < 200; i++ {
		tp := ag.NewTape()
		logits := d.ForwardTeacherForcing(tp, tp.Const(memVal), inputs)
		loss := tp.CrossEntropy(logits, targets)
		tp.Backward(loss)
		optim.Step()
	}
	tp := ag.NewTape()
	greedy := d.Greedy(tp, tp.Const(memVal), bos, eos, 6)
	if !equalInts(greedy, target) {
		t.Fatalf("greedy decode %v, want %v", greedy, target)
	}
	beamOut := d.BeamSearch(tp, tp.Const(memVal), bos, eos, 4, 6)
	if !equalInts(beamOut, target) {
		t.Fatalf("beam decode %v, want %v", beamOut, target)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTopK(t *testing.T) {
	xs := []float64{0.1, 0.9, 0.5, 0.7}
	got := topK(xs, 2)
	if !equalInts(got, []int{1, 3}) {
		t.Fatalf("topK: %v", got)
	}
	if got := topK(xs, 10); len(got) != 4 {
		t.Fatalf("topK over-length: %v", got)
	}
}

func TestTransformerConfigValidate(t *testing.T) {
	bad := TransformerConfig{Vocab: 10, Dim: 7, Heads: 2, Layers: 1, FFDim: 8, MaxLen: 16}
	if err := bad.Validate(); err == nil {
		t.Fatal("indivisible Dim/Heads must fail")
	}
	good := TransformerConfig{Vocab: 10, Dim: 8, Heads: 2, Layers: 1, FFDim: 8, MaxLen: 16}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransformerEncodeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := TransformerConfig{Vocab: 20, Dim: 8, Heads: 2, Layers: 2, FFDim: 16, MaxLen: 10, Segments: 2}
	tr := NewTransformer("bert", cfg, rng)
	tp := ag.NewTape()
	out := tr.Encode(tp, []int{1, 2, 3, 4}, []int{0, 0, 1, 1})
	if out.Rows() != 4 || out.Cols() != 8 {
		t.Fatalf("shape %dx%d", out.Rows(), out.Cols())
	}
}

func TestTransformerContextSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cfg := TransformerConfig{Vocab: 20, Dim: 8, Heads: 2, Layers: 1, FFDim: 16, MaxLen: 10}
	tr := NewTransformer("bert", cfg, rng)
	tp := ag.NewTape()
	a := tr.Encode(tp, []int{5, 6, 7}, nil)
	b := tr.Encode(tp, []int{5, 9, 7}, nil)
	// Token 5 at position 0 must get different representations in different
	// contexts — the context-dependence property §IV-C1 credits BERT with.
	diff := 0.0
	for j := 0; j < 8; j++ {
		diff += math.Abs(a.Value.At(0, j) - b.Value.At(0, j))
	}
	if diff < 1e-9 {
		t.Fatal("transformer output is context independent")
	}
}

func TestTransformerEncodeWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cfg := TransformerConfig{Vocab: 20, Dim: 8, Heads: 2, Layers: 1, FFDim: 16, MaxLen: 4}
	tr := NewTransformer("bert", cfg, rng)
	tp := ag.NewTape()
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8, 9} // 9 tokens, window 4
	out := tr.EncodeWindows(tp, ids, nil)
	if out.Rows() != 9 || out.Cols() != 8 {
		t.Fatalf("windowed shape %dx%d", out.Rows(), out.Cols())
	}
	// Direct Encode must reject the over-long input.
	defer func() {
		if recover() == nil {
			t.Fatal("Encode should reject over-long input")
		}
	}()
	tr.Encode(tp, ids, nil)
}

func TestTransformerGradFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	cfg := TransformerConfig{Vocab: 12, Dim: 8, Heads: 2, Layers: 1, FFDim: 8, MaxLen: 6}
	tr := NewTransformer("bert", cfg, rng)
	tp := ag.NewTape()
	out := tr.Encode(tp, []int{1, 2, 3}, nil)
	tp.Backward(tp.Sum(out))
	for _, p := range tr.Params() {
		// Segment embeddings for unused segment 1 legitimately get no grad.
		if p.Name == "bert.seg.E" {
			continue
		}
		if p.Grad.MaxAbs() == 0 {
			t.Fatalf("no gradient reached %s", p.Name)
		}
	}
}

func TestMultiHeadAttentionMask(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := NewMultiHeadSelfAttention("a", 8, 2, rng)
	tp := ag.NewTape()
	x := tp.Const(tensor.Randn(4, 8, 1, rng))
	// Block all attention to position 3.
	mask := tensor.New(4, 4)
	for i := 0; i < 4; i++ {
		mask.Set(i, 3, -1e9)
	}
	blocked := m.Forward(tp, x, mask)
	// Changing position 3's content must not affect other rows' outputs.
	x2 := x.Value.Clone()
	for j := 0; j < 8; j++ {
		x2.Set(3, j, x2.At(3, j)+5)
	}
	tp2 := ag.NewTape()
	blocked2 := m.Forward(tp2, tp2.Const(x2), mask)
	for i := 0; i < 3; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(blocked.Value.At(i, j)-blocked2.Value.At(i, j)) > 1e-9 {
				t.Fatal("mask failed to isolate position 3")
			}
		}
	}
}

func TestCollectParamsOrderStable(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l1 := NewLinear("a", 2, 2, rng)
	l2 := NewLinear("b", 2, 2, rng)
	ps := CollectParams(l1, l2)
	if len(ps) != 4 || ps[0].Name != "a.W" || ps[2].Name != "b.W" {
		t.Fatalf("unexpected order: %v", []string{ps[0].Name, ps[1].Name, ps[2].Name, ps[3].Name})
	}
}

func BenchmarkBiLSTMForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bi := NewBiLSTM("b", 32, 32, rng)
	x := tensor.Randn(64, 32, 1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := ag.NewTape()
		bi.Forward(tp, tp.Const(x))
	}
}

func BenchmarkTransformerEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := TransformerConfig{Vocab: 1000, Dim: 32, Heads: 4, Layers: 2, FFDim: 64, MaxLen: 64}
	tr := NewTransformer("bert", cfg, rng)
	ids := make([]int, 64)
	for i := range ids {
		ids[i] = rng.Intn(1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := ag.NewTape()
		tr.Encode(tp, ids, nil)
	}
}
