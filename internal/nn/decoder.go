package nn

import (
	"math"
	"math/rand"
	"sort"

	"webbrief/internal/ag"
)

// AttnDecoder is an LSTM decoder with bilinear attention over an encoder
// memory, the generator architecture of §III-C (LSTM decode over Bi-LSTM
// encoded sentences) and of the [Bi-LSTM, LSTM] baselines. At inference it
// supports greedy and beam-search decoding (§IV-A5 uses beam search).
type AttnDecoder struct {
	Emb  *Embedding // output-vocabulary embeddings
	Cell *LSTM      // input width = Emb.Dim()
	Att  *Bilinear  // hidden×memDim
	Out  *Linear    // (hidden+memDim)×vocab
}

// NewAttnDecoder builds a decoder producing distributions over vocab tokens,
// attending over memDim-wide encoder states. The decoder uses input feeding:
// the attention context computed from the previous hidden state joins the
// token embedding as the cell input, so the hidden states (the topic
// representations Q of §III-C) genuinely depend on the attended memory.
func NewAttnDecoder(name string, vocab, embDim, hidden, memDim int, rng *rand.Rand) *AttnDecoder {
	return &AttnDecoder{
		Emb:  NewEmbedding(name+".emb", vocab, embDim, rng),
		Cell: NewLSTM(name+".cell", embDim+memDim, hidden, rng),
		Att:  NewBilinear(name+".att", hidden, memDim, rng),
		Out:  NewLinear(name+".out", hidden+memDim, vocab, rng),
	}
}

// Params implements Layer.
func (d *AttnDecoder) Params() []*ag.Param {
	var ps []*ag.Param
	ps = append(ps, d.Emb.Params()...)
	ps = append(ps, d.Cell.Params()...)
	ps = append(ps, d.Att.Params()...)
	ps = append(ps, d.Out.Params()...)
	return ps
}

// step advances one decode step: attend over memory with the previous
// hidden state, feed embedding+context into the cell, and project the new
// state joined with the context to vocabulary logits.
func (d *AttnDecoder) step(t *ag.Tape, prev int, s State, memory *ag.Node) (logits *ag.Node, next State) {
	att := d.Att.Attention(t, s.H, memory) // 1×memRows
	ctx := t.MatMul(att, memory)           // 1×memDim
	x := t.ConcatCols2(d.Emb.Forward(t, []int{prev}), ctx)
	next = d.Cell.Step(t, x, s)
	logits = d.Out.Forward(t, t.ConcatCols2(next.H, ctx))
	return logits, next
}

// ForwardTeacherForcing decodes with teacher forcing: inputs[i] feeds step i
// and the returned len(inputs)×vocab logits are scored against the shifted
// targets by the caller. inputs normally starts with BOS.
func (d *AttnDecoder) ForwardTeacherForcing(t *ag.Tape, memory *ag.Node, inputs []int) *ag.Node {
	logits, _ := d.ForwardStates(t, memory, inputs)
	return logits
}

// ForwardStates is ForwardTeacherForcing that additionally returns the
// decoder hidden states (len(inputs)×hidden) — the topic token
// representations Q of §III-C, from which the integrated topic
// representation Q^b is built.
func (d *AttnDecoder) ForwardStates(t *ag.Tape, memory *ag.Node, inputs []int) (logits, states *ag.Node) {
	s := d.Cell.ZeroState(t)
	rows := make([]*ag.Node, len(inputs))
	hs := make([]*ag.Node, len(inputs))
	for i, tok := range inputs {
		rows[i], s = d.step(t, tok, s, memory)
		hs[i] = s.H
	}
	return t.ConcatRows(rows...), t.ConcatRows(hs...)
}

// GreedyWithStates greedily decodes up to maxLen tokens and returns both the
// tokens (EOS excluded) and the decoder hidden states for the emitted steps.
// Models use it at inference where no gold topic is available to force.
func (d *AttnDecoder) GreedyWithStates(t *ag.Tape, memory *ag.Node, bos, eos, maxLen int) ([]int, *ag.Node) {
	s := d.Cell.ZeroState(t)
	prev := bos
	var out []int
	var hs []*ag.Node
	for i := 0; i < maxLen; i++ {
		var logits *ag.Node
		logits, s = d.step(t, prev, s, memory)
		hs = append(hs, s.H)
		tok := logits.Value.ArgmaxRow(0)
		if tok == eos {
			break
		}
		out = append(out, tok)
		prev = tok
	}
	return out, t.ConcatRows(hs...)
}

// Greedy decodes up to maxLen tokens, stopping at eos. The returned slice
// excludes BOS and EOS.
func (d *AttnDecoder) Greedy(t *ag.Tape, memory *ag.Node, bos, eos, maxLen int) []int {
	s := d.Cell.ZeroState(t)
	prev := bos
	var out []int
	for i := 0; i < maxLen; i++ {
		var logits *ag.Node
		logits, s = d.step(t, prev, s, memory)
		tok := logits.Value.ArgmaxRow(0)
		if tok == eos {
			break
		}
		out = append(out, tok)
		prev = tok
	}
	return out
}

// beam is one hypothesis during beam search.
type beam struct {
	tokens  []int
	logProb float64
	state   State
	done    bool
}

// BeamSearch decodes with the given beam width and maximum depth, returning
// the highest-scoring completed hypothesis (length-normalised log
// probability). The paper uses width 200 and depth 4; both are parameters
// here so experiments can scale them to the corpus.
func (d *AttnDecoder) BeamSearch(t *ag.Tape, memory *ag.Node, bos, eos, width, maxLen int) []int {
	beams := []beam{{state: d.Cell.ZeroState(t)}}
	for depth := 0; depth < maxLen; depth++ {
		var next []beam
		for _, b := range beams {
			if b.done {
				next = append(next, b)
				continue
			}
			prev := bos
			if len(b.tokens) > 0 {
				prev = b.tokens[len(b.tokens)-1]
			}
			logits, s := d.step(t, prev, b.state, memory)
			logp := logits.Value.LogSoftmaxRows().Row(0)
			// Expand only the top `width` continuations of this beam;
			// expanding more can never survive the global prune below.
			idx := topK(logp, width)
			for _, j := range idx {
				nb := beam{
					tokens:  append(append([]int(nil), b.tokens...), j),
					logProb: b.logProb + logp[j],
					state:   s,
					done:    j == eos,
				}
				next = append(next, nb)
			}
		}
		sort.SliceStable(next, func(i, j int) bool {
			return score(next[i]) > score(next[j])
		})
		if len(next) > width {
			next = next[:width]
		}
		beams = next
		allDone := true
		for _, b := range beams {
			if !b.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	best := beams[0]
	for _, b := range beams[1:] {
		if score(b) > score(best) {
			best = b
		}
	}
	// Strip the trailing EOS if present.
	toks := best.tokens
	if len(toks) > 0 && best.done {
		toks = toks[:len(toks)-1]
	}
	return toks
}

// score is the length-normalised log probability of a beam.
func score(b beam) float64 {
	n := len(b.tokens)
	if n == 0 {
		return math.Inf(-1)
	}
	return b.logProb / float64(n)
}

// topK returns the indices of the k largest values in xs (k capped at
// len(xs)), in descending value order.
func topK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx[:k]
}
