package nn

import (
	"math/rand"
	"reflect"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// TestBeamSearchScratchMatchesReference sweeps decoders, widths and depths
// and checks the scratch search reproduces the reference BeamSearch exactly
// — same hypotheses, same stable tie-breaking — while reusing one scratch
// across every call (the cross-request reuse pattern of a serving replica).
func TestBeamSearchScratchMatchesReference(t *testing.T) {
	const bos, eos = 0, 1
	bs := NewBeamScratch(0, 0, 0) // deliberately cold: everything grows on demand
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(40 + seed))
		vocab := 6 + int(seed)
		d := NewAttnDecoder("d", vocab, 5, 7, 9, rng)
		tp := ag.NewTape()
		mem := tp.Const(tensor.Randn(4, 9, 1, rng))
		for _, width := range []int{1, 2, 3, 5} {
			for _, maxLen := range []int{1, 2, 4, 6} {
				want := d.BeamSearch(tp, mem, bos, eos, width, maxLen)
				got := d.BeamSearchScratch(tp, mem, bos, eos, width, maxLen, bs)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d width %d maxLen %d: scratch %v, reference %v",
						seed, width, maxLen, got, want)
				}
				// A nil scratch must also match.
				if again := d.BeamSearchScratch(tp, mem, bos, eos, width, maxLen, nil); !reflect.DeepEqual(want, again) {
					t.Fatalf("seed %d width %d maxLen %d: nil-scratch run diverges", seed, width, maxLen)
				}
			}
		}
	}
}

// TestBeamScratchTopKMatchesSortStable property-checks the insertion-based
// top-K selection against the sort.SliceStable implementation it replaces,
// on inputs dense with ties.
func TestBeamScratchTopKMatchesSortStable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	bs := NewBeamScratch(0, 0, 0)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(5)) // few distinct values → many ties
		}
		k := 1 + rng.Intn(n+2)
		want := topK(xs, k)
		got := bs.topK(xs, k)
		if len(want) != len(got) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d (n=%d k=%d): scratch %v, reference %v", trial, n, k, got, want)
			}
		}
	}
}
