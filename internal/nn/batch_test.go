package nn

import (
	"math/rand"
	"reflect"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// ragged test lengths: 1-token rows, a shared max, and odd middles.
var raggedLens = [][]int{
	{1},
	{3, 3},
	{1, 7},
	{7, 1, 4},
	{5, 2, 5, 1},
	{1, 1, 1, 1, 1},
	{6, 3, 1, 7, 2, 5},
	{4, 4, 4, 4, 4, 4, 4},
	{7, 6, 5, 4, 3, 2, 1, 7},
}

// TestBiLSTMForwardBatchMatchesSerial pins ForwardBatch to Forward across
// ragged batch shapes: every output value must compare equal (== admits the
// ±0 divergence the blocked kernels document, and nothing else).
func TestBiLSTMForwardBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const in, hidden = 9, 6
	bi := NewBiLSTM("b", in, hidden, rng)
	for _, lens := range raggedLens {
		// Serial references, one per sequence, each on a fresh pack-routed
		// infer tape — the exact per-request configuration.
		inputs := make([]*tensor.Matrix, len(lens))
		want := make([]*tensor.Matrix, len(lens))
		for i, l := range lens {
			inputs[i] = tensor.Uniform(l, in, -1, 1, rng)
			tp := ag.NewInferTape()
			tp.SetPack(&tensor.PackBuf{})
			want[i] = bi.Forward(tp, tp.Const(inputs[i])).Value.Clone()
		}
		// One batched pass over all of them on a shared tape.
		tp := ag.NewInferTape()
		tp.SetPack(&tensor.PackBuf{})
		xs := make([]*ag.Node, len(lens))
		for i := range inputs {
			xs[i] = tp.Const(inputs[i])
		}
		got := bi.ForwardBatch(tp, xs)
		for i := range got {
			if got[i].Value.Rows != want[i].Rows || got[i].Value.Cols != want[i].Cols {
				t.Fatalf("lens %v seq %d: batched shape %dx%d, want %dx%d",
					lens, i, got[i].Value.Rows, got[i].Value.Cols, want[i].Rows, want[i].Cols)
			}
			for k, v := range got[i].Value.Data {
				if v != want[i].Data[k] {
					t.Fatalf("lens %v seq %d: value %d diverges: batched %v, serial %v",
						lens, i, k, v, want[i].Data[k])
				}
			}
		}
	}
}

// TestBeamSearchBatchMatchesScratch pins BeamSearchBatch to per-instance
// BeamSearchScratch: identical token sequences for every instance across
// batch sizes, widths and ragged memory lengths.
func TestBeamSearchBatchMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const vocab, embDim, hidden, memDim = 17, 5, 6, 6
	const bos, eos, maxLen = 1, 2, 5
	d := NewAttnDecoder("d", vocab, embDim, hidden, memDim, rng)
	for _, width := range []int{2, 3, 4} {
		for _, lens := range raggedLens {
			mems := make([]*tensor.Matrix, len(lens))
			want := make([][]int, len(lens))
			for i, l := range lens {
				mems[i] = tensor.Uniform(l, memDim, -1, 1, rng)
				tp := ag.NewInferTape()
				tp.SetPack(&tensor.PackBuf{})
				want[i] = d.BeamSearchScratch(tp, tp.Const(mems[i]), bos, eos, width, maxLen,
					NewBeamScratch(vocab, width, maxLen))
			}
			tp := ag.NewInferTape()
			tp.SetPack(&tensor.PackBuf{})
			nodes := make([]*ag.Node, len(lens))
			scratches := make([]*BeamScratch, len(lens))
			for i := range mems {
				nodes[i] = tp.Const(mems[i])
				scratches[i] = NewBeamScratch(vocab, width, maxLen)
			}
			got := d.BeamSearchBatch(tp, nodes, bos, eos, width, maxLen, scratches)
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("width %d lens %v inst %d: batched %v, serial %v",
						width, lens, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBeamSearchBatchNilScratches checks the convenience paths: a nil
// scratch slice and nil entries both get throwaway scratches, and reused
// scratches keep producing identical results (pool ping-pong hygiene).
func TestBeamSearchBatchNilScratches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const vocab, embDim, hidden, memDim = 11, 4, 5, 5
	d := NewAttnDecoder("d", vocab, embDim, hidden, memDim, rng)
	mems := []*tensor.Matrix{
		tensor.Uniform(3, memDim, -1, 1, rng),
		tensor.Uniform(1, memDim, -1, 1, rng),
	}
	tp := ag.NewInferTape()
	tp.SetPack(&tensor.PackBuf{})
	nodes := []*ag.Node{tp.Const(mems[0]), tp.Const(mems[1])}
	first := d.BeamSearchBatch(tp, nodes, 1, 2, 3, 4, nil)
	scratches := []*BeamScratch{NewBeamScratch(vocab, 3, 4), nil}
	for round := 0; round < 3; round++ {
		tp.Reset()
		nodes = []*ag.Node{tp.Const(mems[0]), tp.Const(mems[1])}
		again := d.BeamSearchBatch(tp, nodes, 1, 2, 3, 4, scratches)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("round %d: reused scratches diverged: %v vs %v", round, again, first)
		}
	}
}
