package nn

import (
	"math"
	"sort"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// beam32 is one hypothesis during a float32 beam search. logProb stays
// float64 — see AttnDecoder32's precision note.
type beam32 struct {
	tokens  []int
	logProb float64
	state   State32
	done    bool
}

// score32 is the length-normalised log probability of a beam.
func score32(b beam32) float64 {
	n := len(b.tokens)
	if n == 0 {
		return math.Inf(-1)
	}
	return b.logProb / float64(n)
}

// BeamScratch32 holds the reusable buffers for one float32 beam search,
// mirroring BeamScratch: log-softmax row, top-K index scratch, ping-pong
// beam frontiers and token pools. Not safe for concurrent searches.
type BeamScratch32 struct {
	logp  tensor.Matrix32 // 1×vocab log-softmax scratch, header reused
	idx   []int           // top-K selection scratch
	cur   []beam32        // frontier at the current depth
	next  []beam32        // candidate frontier being built
	pools [2][][]int      // per-slot token backing arrays
}

// NewBeamScratch32 returns a scratch presized for the given vocabulary
// size, beam width and decode depth; all buffers still grow on demand.
func NewBeamScratch32(vocab, width, maxLen int) *BeamScratch32 {
	bs := &BeamScratch32{}
	if vocab > 0 {
		bs.logp.Data = make([]float32, vocab)
		bs.idx = make([]int, 0, vocab)
	}
	if width > 0 {
		slots := width*width + width
		bs.cur = make([]beam32, 0, slots)
		bs.next = make([]beam32, 0, slots)
		for p := range bs.pools {
			bs.pools[p] = make([][]int, slots)
			for s := range bs.pools[p] {
				bs.pools[p][s] = make([]int, 0, maxLen+1)
			}
		}
	}
	return bs
}

// logSoftmaxRow computes the log-softmax of the 1×vocab logits row into the
// scratch buffer through the shared float32 kernel.
func (bs *BeamScratch32) logSoftmaxRow(logits *tensor.Matrix32) []float32 {
	n := logits.Cols
	if cap(bs.logp.Data) < n {
		bs.logp.Data = make([]float32, n)
	}
	bs.logp.Rows, bs.logp.Cols, bs.logp.Data = 1, n, bs.logp.Data[:n]
	tensor.LogSoftmaxRowsInto32(&bs.logp, logits)
	return bs.logp.Data
}

// topK selects the indices of the k largest values in xs in descending
// value order, ties broken toward the lower index, without sorting the
// whole vocabulary. The returned slice aliases the scratch.
func (bs *BeamScratch32) topK(xs []float32, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := bs.idx[:0]
	for i, v := range xs {
		if len(idx) == k {
			if !(v > xs[idx[k-1]]) { // ties keep the earlier index
				continue
			}
			idx = idx[:k-1]
		}
		p := len(idx)
		for p > 0 && xs[idx[p-1]] < v {
			p--
		}
		idx = append(idx, 0)
		copy(idx[p+1:], idx[p:])
		idx[p] = i
	}
	bs.idx = idx[:0]
	return idx
}

// claim copies src into slot s of the given token pool and returns it with
// room for one appended token.
func (bs *BeamScratch32) claim(pool, s int, src []int) []int {
	for s >= len(bs.pools[pool]) {
		bs.pools[pool] = append(bs.pools[pool], nil)
	}
	buf := bs.pools[pool][s]
	if cap(buf) < len(src)+1 {
		buf = make([]int, 0, len(src)+8)
	}
	buf = buf[:len(src)]
	copy(buf, src)
	bs.pools[pool][s] = buf
	return buf
}

// beamConfidence derives the cascade confidence from a final frontier: the
// margin between the best and second-best hypotheses' length-normalised
// scores, and the best hypothesis's geometric-mean token probability. A
// lone hypothesis has no competitor, so its margin is +Inf.
func beamConfidence(beams []beam32) (best beam32, conf Confidence) {
	best = beams[0]
	secondScore := math.Inf(-1)
	for _, b := range beams[1:] {
		s := score32(b)
		if s > score32(best) {
			secondScore = score32(best)
			best = b
		} else if s > secondScore {
			secondScore = s
		}
	}
	conf = Confidence{Margin: score32(best) - secondScore, Posterior: math.Exp(score32(best))}
	if len(beams) < 2 || math.IsNaN(conf.Margin) {
		conf.Margin = math.Inf(1)
	}
	return best, conf
}

// BeamSearchScratch decodes with the given beam width and maximum depth
// through a reusable scratch — the float32 twin of
// AttnDecoder.BeamSearchScratch, with identical frontier ordering, topK
// tie-breaking, sort.SliceStable pruning and token-pool ping-ponging — and
// additionally reports the decode Confidence for cascade routing. A nil
// scratch falls back to a throwaway one; the returned tokens are copied out
// and caller-owned.
func (d *AttnDecoder32) BeamSearchScratch(t *ag.Tape32, memory *tensor.Matrix32, bos, eos, width, maxLen int, bs *BeamScratch32) ([]int, Confidence) {
	if bs == nil {
		bs = NewBeamScratch32(0, width, maxLen)
	}
	pool := 0
	beams := append(bs.cur[:0], beam32{state: d.Cell.ZeroState(t)})
	next := bs.next[:0]
	for depth := 0; depth < maxLen; depth++ {
		next = next[:0]
		slot := 0
		for _, b := range beams {
			if b.done {
				b.tokens = bs.claim(pool, slot, b.tokens)
				slot++
				next = append(next, b)
				continue
			}
			prev := bos
			if len(b.tokens) > 0 {
				prev = b.tokens[len(b.tokens)-1]
			}
			logits, s := d.step(t, prev, b.state, memory)
			logp := bs.logSoftmaxRow(logits)
			// Expand only the top `width` continuations of this beam;
			// expanding more can never survive the global prune below.
			for _, j := range bs.topK(logp, width) {
				toks := bs.claim(pool, slot, b.tokens)
				slot++
				next = append(next, beam32{
					tokens:  append(toks, j),
					logProb: b.logProb + float64(logp[j]),
					state:   s,
					done:    j == eos,
				})
			}
		}
		sort.SliceStable(next, func(i, j int) bool {
			return score32(next[i]) > score32(next[j])
		})
		if len(next) > width {
			next = next[:width]
		}
		beams, next = next, beams
		pool = 1 - pool
		allDone := true
		for _, b := range beams {
			if !b.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	best, conf := beamConfidence(beams)
	toks := best.tokens
	if len(toks) > 0 && best.done {
		toks = toks[:len(toks)-1] // strip the trailing EOS
	}
	// Persist grown frontiers, then hand back a caller-owned copy.
	bs.cur, bs.next = beams[:0], next[:0]
	if len(toks) == 0 {
		return nil, conf
	}
	return append([]int(nil), toks...), conf
}
