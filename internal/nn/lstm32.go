package nn

import (
	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// LSTM32 is the float32 serving form of LSTM, with the same fused
// [input | forget | cell | output] gate layout.
type LSTM32 struct {
	Wx     *tensor.Matrix32 // in×4h
	Wh     *tensor.Matrix32 // h×4h
	B      *tensor.Matrix32 // 1×4h
	Hidden int
}

// NewLSTM32From converts a trained LSTM to float32.
func NewLSTM32From(l *LSTM) *LSTM32 {
	return &LSTM32{
		Wx:     tensor.ToMatrix32(l.Wx.Value),
		Wh:     tensor.ToMatrix32(l.Wh.Value),
		B:      tensor.ToMatrix32(l.B.Value),
		Hidden: l.Hidden,
	}
}

// State32 is an LSTM hidden/cell pair, each rows×hidden (1 row per
// sequence; batched steps carry several).
type State32 struct {
	H, C *tensor.Matrix32
}

// ZeroState returns the all-zero initial state on tape t.
func (l *LSTM32) ZeroState(t *ag.Tape32) State32 {
	return State32{H: t.AllocValue(1, l.Hidden), C: t.AllocValue(1, l.Hidden)}
}

// Step advances the LSTM one timestep (or one fused batch of timesteps —
// every row advances independently) and returns the new state.
func (l *LSTM32) Step(t *ag.Tape32, x *tensor.Matrix32, s State32) State32 {
	return l.stepFromProj(t, t.MatMul(x, l.Wx), s)
}

// stepFromProj is Step with the input projection x·Wx already computed.
// The forward passes hoist that projection out of the recurrence: the
// whole sequence's x·Wx is one packed seq-row matmul instead of seq
// latency-bound 1-row products, and matmul rows are computed independently
// in ascending-k order, so the hoisted projection is bitwise identical to
// the per-step one. Only the h·Wh recurrence stays inside the time loop.
func (l *LSTM32) stepFromProj(t *ag.Tape32, xp *tensor.Matrix32, s State32) State32 {
	gates := t.AddRowVector(t.Add(xp, t.MatMul(s.H, l.Wh)), l.B)
	h := l.Hidden
	i := t.Sigmoid(t.SliceCols(gates, 0, h))
	f := t.Sigmoid(t.SliceCols(gates, h, 2*h))
	g := t.Tanh(t.SliceCols(gates, 2*h, 3*h))
	o := t.Sigmoid(t.SliceCols(gates, 3*h, 4*h))
	c := t.Add(t.Mul(f, s.C), t.Mul(i, g))
	return State32{H: t.Mul(o, t.Tanh(c)), C: c}
}

// Forward runs the LSTM over a seq×in input and returns the seq×hidden
// matrix of hidden states.
func (l *LSTM32) Forward(t *ag.Tape32, x *tensor.Matrix32) *tensor.Matrix32 {
	seq := x.Rows
	s := l.ZeroState(t)
	xp := t.MatMul(x, l.Wx) // hoisted input projection, seq×4h
	hs := make([]*tensor.Matrix32, seq)
	for i := 0; i < seq; i++ {
		s = l.stepFromProj(t, t.SliceRows(xp, i, i+1), s)
		hs[i] = s.H
	}
	return t.ConcatRows(hs...)
}

// BiLSTM32 is the float32 serving form of BiLSTM.
type BiLSTM32 struct {
	Fwd, Bwd *LSTM32
}

// NewBiLSTM32From converts a trained BiLSTM to float32.
func NewBiLSTM32From(b *BiLSTM) *BiLSTM32 {
	return &BiLSTM32{Fwd: NewLSTM32From(b.Fwd), Bwd: NewLSTM32From(b.Bwd)}
}

// OutDim returns the concatenated hidden width.
func (b *BiLSTM32) OutDim() int { return b.Fwd.Hidden + b.Bwd.Hidden }

// Forward returns the seq×2h matrix of concatenated forward/backward
// states, mirroring BiLSTM.Forward.
func (b *BiLSTM32) Forward(t *ag.Tape32, x *tensor.Matrix32) *tensor.Matrix32 {
	seq := x.Rows
	fwd := make([]*tensor.Matrix32, seq)
	s := b.Fwd.ZeroState(t)
	xp := t.MatMul(x, b.Fwd.Wx)
	for i := 0; i < seq; i++ {
		s = b.Fwd.stepFromProj(t, t.SliceRows(xp, i, i+1), s)
		fwd[i] = s.H
	}
	bwd := make([]*tensor.Matrix32, seq)
	s = b.Bwd.ZeroState(t)
	xp = t.MatMul(x, b.Bwd.Wx)
	for i := seq - 1; i >= 0; i-- {
		s = b.Bwd.stepFromProj(t, t.SliceRows(xp, i, i+1), s)
		bwd[i] = s.H
	}
	rows := make([]*tensor.Matrix32, seq)
	for i := 0; i < seq; i++ {
		rows[i] = t.ConcatCols2(fwd[i], bwd[i])
	}
	return t.ConcatRows(rows...)
}

// ForwardBatch runs the Bi-LSTM over a ragged batch of sequences in
// lockstep, the float32 twin of BiLSTM.ForwardBatch: each timestep fuses
// the per-sequence 1-row recurrences into one B-row Step, with active-set
// compaction for ragged lengths. Each returned seq_i×2h matrix matches what
// Forward would produce for that sequence alone (kernel rows are computed
// independently; the gather/scatter helpers only move rows).
func (b *BiLSTM32) ForwardBatch(t *ag.Tape32, xs []*tensor.Matrix32) []*tensor.Matrix32 {
	outs := make([]*tensor.Matrix32, len(xs))
	for i, x := range xs {
		outs[i] = t.AllocValue(x.Rows, b.Fwd.Hidden+b.Bwd.Hidden)
	}
	lstmLockstep32(t, b.Fwd, xs, outs, 0, false)
	lstmLockstep32(t, b.Bwd, xs, outs, b.Fwd.Hidden, true)
	return outs
}

// lstmLockstep32 advances l over all sequences at once, writing each hidden
// state into columns [colOff, colOff+h) of the owning sequence's output
// matrix — the float32 twin of lstmLockstep.
func lstmLockstep32(t *ag.Tape32, l *LSTM32, xs []*tensor.Matrix32, outs []*tensor.Matrix32, colOff int, reverse bool) {
	n := len(xs)
	if n == 0 {
		return
	}
	h := l.Hidden
	maxLen := 0
	for _, x := range xs {
		if x.Rows > maxLen {
			maxLen = x.Rows
		}
	}
	// Hoist each sequence's input projection out of the time loop (see
	// stepFromProj); the per-step gather then reads projected 4h-wide rows
	// and the only matmul inside the recurrence is h·Wh.
	xps := make([]*tensor.Matrix32, n)
	for i, x := range xs {
		xps[i] = t.MatMul(x, l.Wx)
	}
	hs := make([]*tensor.Matrix32, n)
	cs := make([]*tensor.Matrix32, n)
	for i := range xs {
		hs[i] = t.AllocValue(1, h)
		cs[i] = t.AllocValue(1, h)
	}
	var (
		active = make([]int, 0, n)
		mats   = make([]*tensor.Matrix32, 0, n)
		rows   = make([]int, 0, n)
		zeros  = make([]int, n)
	)
	for step := 0; step < maxLen; step++ {
		active = active[:0]
		for i, x := range xs {
			if step < x.Rows {
				active = append(active, i)
			}
		}
		a := len(active)
		xp := t.AllocValue(a, 4*h)
		mats, rows = mats[:0], rows[:0]
		for _, i := range active {
			pos := step
			if reverse {
				pos = xs[i].Rows - 1 - step
			}
			mats = append(mats, xps[i])
			rows = append(rows, pos)
		}
		tensor.GatherRowsInto32(xp, mats, rows)
		hp := t.AllocValue(a, h)
		cp := t.AllocValue(a, h)
		mats = mats[:0]
		for _, i := range active {
			mats = append(mats, hs[i])
		}
		tensor.GatherRowsInto32(hp, mats, zeros[:a])
		mats = mats[:0]
		for _, i := range active {
			mats = append(mats, cs[i])
		}
		tensor.GatherRowsInto32(cp, mats, zeros[:a])
		st := l.stepFromProj(t, xp, State32{H: hp, C: cp})
		mats = mats[:0]
		for _, i := range active {
			mats = append(mats, hs[i])
		}
		tensor.ScatterRowsInto32(mats, zeros[:a], st.H)
		mats = mats[:0]
		for _, i := range active {
			mats = append(mats, cs[i])
		}
		tensor.ScatterRowsInto32(mats, zeros[:a], st.C)
		mats, rows = mats[:0], rows[:0]
		for _, i := range active {
			pos := step
			if reverse {
				pos = xs[i].Rows - 1 - step
			}
			mats = append(mats, outs[i])
			rows = append(rows, pos)
		}
		tensor.ScatterRowSpansInto32(mats, rows, colOff, st.H)
	}
}
