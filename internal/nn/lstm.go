package nn

import (
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// LSTM is a single-direction LSTM with fused gate weights, the recurrent
// encoder used by the extractor E and the generator G in Joint-WB and by
// every Bi-LSTM baseline.
//
// Gate layout in the fused matrices is [input | forget | cell | output].
type LSTM struct {
	Wx     *ag.Param // in×4h
	Wh     *ag.Param // h×4h
	B      *ag.Param // 1×4h
	Hidden int
}

// NewLSTM returns an LSTM with Glorot-initialised weights and forget-gate
// bias 1 (the standard trick to ease gradient flow early in training).
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	bx := xavier(in, 4*hidden)
	bh := xavier(hidden, 4*hidden)
	l := &LSTM{
		Wx:     ag.NewParam(name+".Wx", tensor.Uniform(in, 4*hidden, -bx, bx, rng)),
		Wh:     ag.NewParam(name+".Wh", tensor.Uniform(hidden, 4*hidden, -bh, bh, rng)),
		B:      ag.NewParam(name+".B", tensor.New(1, 4*hidden)),
		Hidden: hidden,
	}
	for j := hidden; j < 2*hidden; j++ {
		l.B.Value.Data[j] = 1
	}
	return l
}

// Params implements Layer.
func (l *LSTM) Params() []*ag.Param { return []*ag.Param{l.Wx, l.Wh, l.B} }

// State is an LSTM hidden/cell pair, each 1×hidden.
type State struct {
	H, C *ag.Node
}

// ZeroState returns the all-zero initial state on tape t. The buffers come
// from the tape's arena, so they obey tape lifetime and cost no heap
// allocation on arena tapes.
func (l *LSTM) ZeroState(t *ag.Tape) State {
	return State{
		H: t.Const(t.AllocValue(1, l.Hidden)),
		C: t.Const(t.AllocValue(1, l.Hidden)),
	}
}

// Step advances the LSTM one timestep with input x (1×in) and returns the
// new state.
func (l *LSTM) Step(t *ag.Tape, x *ag.Node, s State) State {
	gates := t.AddRowVector(
		t.Add(t.MatMul(x, t.Use(l.Wx)), t.MatMul(s.H, t.Use(l.Wh))),
		t.Use(l.B),
	)
	h := l.Hidden
	i := t.Sigmoid(t.SliceCols(gates, 0, h))
	f := t.Sigmoid(t.SliceCols(gates, h, 2*h))
	g := t.Tanh(t.SliceCols(gates, 2*h, 3*h))
	o := t.Sigmoid(t.SliceCols(gates, 3*h, 4*h))
	c := t.Add(t.Mul(f, s.C), t.Mul(i, g))
	return State{H: t.Mul(o, t.Tanh(c)), C: c}
}

// Forward runs the LSTM over a seq×in input and returns the seq×hidden
// matrix of hidden states.
func (l *LSTM) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	seq := x.Rows()
	s := l.ZeroState(t)
	hs := make([]*ag.Node, seq)
	for i := 0; i < seq; i++ {
		s = l.Step(t, t.SliceRows(x, i, i+1), s)
		hs[i] = s.H
	}
	return t.ConcatRows(hs...)
}

// BiLSTM runs two LSTMs over the sequence in opposite directions and
// concatenates their hidden states, the encoder of §III-C.
type BiLSTM struct {
	Fwd, Bwd *LSTM
}

// NewBiLSTM returns a Bi-LSTM whose output width is 2*hidden.
func NewBiLSTM(name string, in, hidden int, rng *rand.Rand) *BiLSTM {
	return &BiLSTM{
		Fwd: NewLSTM(name+".fwd", in, hidden, rng),
		Bwd: NewLSTM(name+".bwd", in, hidden, rng),
	}
}

// Params implements Layer.
func (b *BiLSTM) Params() []*ag.Param {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}

// OutDim returns the concatenated hidden width.
func (b *BiLSTM) OutDim() int { return b.Fwd.Hidden + b.Bwd.Hidden }

// Forward returns the seq×2h matrix of concatenated forward/backward states.
func (b *BiLSTM) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	seq := x.Rows()
	fwd := make([]*ag.Node, seq)
	s := b.Fwd.ZeroState(t)
	for i := 0; i < seq; i++ {
		s = b.Fwd.Step(t, t.SliceRows(x, i, i+1), s)
		fwd[i] = s.H
	}
	bwd := make([]*ag.Node, seq)
	s = b.Bwd.ZeroState(t)
	for i := seq - 1; i >= 0; i-- {
		s = b.Bwd.Step(t, t.SliceRows(x, i, i+1), s)
		bwd[i] = s.H
	}
	rows := make([]*ag.Node, seq)
	for i := 0; i < seq; i++ {
		rows[i] = t.ConcatCols2(fwd[i], bwd[i])
	}
	return t.ConcatRows(rows...)
}
