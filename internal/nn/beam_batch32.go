package nn

import (
	"sort"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// BeamSearchBatch runs BeamSearchScratch for several instances at once on
// the float32 tape — the float32 twin of AttnDecoder.BeamSearchBatch, fusing
// each decode depth's per-beam 1-row steps across every live beam of every
// unfinished instance into one R-row batched step. Attention stays
// per-instance; the R-row hidden-state projection through Att.W is shared.
//
// Per instance the decode is exactly BeamSearchScratch: same frontier
// ordering, topK tie-breaking, sort.SliceStable prune, done-beam claiming
// and ping-pong token pools, driven by that instance's own BeamScratch32.
//
// memories[q] is instance q's decoder memory; scratches[q] may be nil (a
// throwaway scratch is used), as may the whole slice. The returned token
// slices are copied out and caller-owned; results[q] is nil when instance q
// decodes to nothing. confs[q] is instance q's decode Confidence, derived
// from its final frontier exactly as in the single-instance search.
func (d *AttnDecoder32) BeamSearchBatch(t *ag.Tape32, memories []*tensor.Matrix32, bos, eos, width, maxLen int, scratches []*BeamScratch32) ([][]int, []Confidence) {
	nInst := len(memories)
	results := make([][]int, nInst)
	confs := make([]Confidence, nInst)
	if nInst == 0 {
		return results, confs
	}
	type instSearch32 struct {
		bs    *BeamScratch32
		beams []beam32
		next  []beam32
		pool  int
		live  bool
	}
	insts := make([]instSearch32, nInst)
	for q := range insts {
		var bs *BeamScratch32
		if q < len(scratches) {
			bs = scratches[q]
		}
		if bs == nil {
			bs = NewBeamScratch32(0, width, maxLen)
		}
		insts[q] = instSearch32{
			bs:    bs,
			beams: append(bs.cur[:0], beam32{state: d.Cell.ZeroState(t)}),
			next:  bs.next[:0],
			live:  true,
		}
	}
	finalize := func(q int) {
		ist := &insts[q]
		best, conf := beamConfidence(ist.beams)
		confs[q] = conf
		toks := best.tokens
		if len(toks) > 0 && best.done {
			toks = toks[:len(toks)-1] // strip the trailing EOS
		}
		// Persist grown frontiers, then hand back a caller-owned copy.
		ist.bs.cur, ist.bs.next = ist.beams[:0], ist.next[:0]
		if len(toks) > 0 {
			results[q] = append([]int(nil), toks...)
		}
		ist.live = false
	}
	h := d.Cell.Hidden
	var (
		lo    = make([]int, nInst) // slab row range [lo, hi) per instance
		hi    = make([]int, nInst)
		rowOf = make([]int, 0, nInst)              // owning instance per slab row
		prev  = make([]int, 0, nInst)              // previous token per slab row
		hmats = make([]*tensor.Matrix32, 0, nInst) // per-row H gather sources
		cmats = make([]*tensor.Matrix32, 0, nInst) // per-row C gather sources
		zeros []int
		ctxs  = make([]*tensor.Matrix32, 0, nInst)
	)
	for depth := 0; depth < maxLen; depth++ {
		// Register one slab row per live beam, grouped per instance in
		// frontier order so instance attention blocks stay contiguous.
		rowOf, prev, hmats, cmats = rowOf[:0], prev[:0], hmats[:0], cmats[:0]
		for q := range insts {
			ist := &insts[q]
			if !ist.live {
				continue
			}
			lo[q] = len(rowOf)
			for _, b := range ist.beams {
				if b.done {
					continue
				}
				p := bos
				if len(b.tokens) > 0 {
					p = b.tokens[len(b.tokens)-1]
				}
				rowOf = append(rowOf, q)
				prev = append(prev, p)
				hmats = append(hmats, b.state.H)
				cmats = append(cmats, b.state.C)
			}
			hi[q] = len(rowOf)
		}
		r := len(rowOf)
		if r == 0 {
			break
		}
		for len(zeros) < r {
			zeros = append(zeros, 0)
		}
		// Gather every live beam's state into R-row slabs and take one
		// fused decoder step (attention, cell, output projection).
		hp := t.AllocValue(r, h)
		tensor.GatherRowsInto32(hp, hmats, zeros[:r])
		cp := t.AllocValue(r, h)
		tensor.GatherRowsInto32(cp, cmats, zeros[:r])
		hw := t.MatMul(hp, d.Att.W)
		ctxs = ctxs[:0]
		for q := range insts {
			if !insts[q].live || hi[q] == lo[q] {
				continue
			}
			sc := t.MatMulTransB(t.SliceRows(hw, lo[q], hi[q]), memories[q])
			att := t.SoftmaxRows(sc)
			ctxs = append(ctxs, t.MatMul(att, memories[q]))
		}
		ctx := ctxs[0]
		if len(ctxs) > 1 {
			ctx = t.ConcatRows(ctxs...)
		}
		x := t.ConcatCols2(d.Emb.Forward(t, prev), ctx)
		st := d.Cell.Step(t, x, State32{H: hp, C: cp})
		logits := d.Out.Forward(t, t.ConcatCols2(st.H, ctx))
		logpAll := t.LogSoftmaxRows(logits)
		// Per-instance frontier bookkeeping, exactly as BeamSearchScratch.
		for q := range insts {
			ist := &insts[q]
			if !ist.live {
				continue
			}
			bs := ist.bs
			next := ist.next[:0]
			slot := 0
			row := lo[q]
			for _, b := range ist.beams {
				if b.done {
					b.tokens = bs.claim(ist.pool, slot, b.tokens)
					slot++
					next = append(next, b)
					continue
				}
				logp := logpAll.Row(row)
				s := State32{
					H: t.ViewValue(1, h, st.H.Row(row)),
					C: t.ViewValue(1, h, st.C.Row(row)),
				}
				row++
				for _, j := range bs.topK(logp, width) {
					toks := bs.claim(ist.pool, slot, b.tokens)
					slot++
					next = append(next, beam32{
						tokens:  append(toks, j),
						logProb: b.logProb + float64(logp[j]),
						state:   s,
						done:    j == eos,
					})
				}
			}
			sort.SliceStable(next, func(i, j int) bool {
				return score32(next[i]) > score32(next[j])
			})
			if len(next) > width {
				next = next[:width]
			}
			ist.beams, ist.next = next, ist.beams
			ist.pool = 1 - ist.pool
			allDone := true
			for _, b := range ist.beams {
				if !b.done {
					allDone = false
					break
				}
			}
			if allDone {
				finalize(q)
			}
		}
	}
	for q := range insts {
		if insts[q].live {
			finalize(q)
		}
	}
	return results, confs
}
