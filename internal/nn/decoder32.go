package nn

import (
	"math"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// AttnDecoder32 is the float32 serving form of AttnDecoder. Decode path
// scores (beam log-probabilities, lengths, margins) accumulate in float64
// even though every matrix op runs in float32: the per-step log-softmax
// values are float32-accurate, but summing them along a hypothesis is a
// sequential reduction whose error the cascade's confidence thresholds
// should not have to absorb.
type AttnDecoder32 struct {
	Emb  *Embedding32
	Cell *LSTM32
	Att  *Bilinear32
	Out  *Linear32
}

// NewAttnDecoder32From converts a trained AttnDecoder to float32.
func NewAttnDecoder32From(d *AttnDecoder) *AttnDecoder32 {
	return &AttnDecoder32{
		Emb:  NewEmbedding32From(d.Emb),
		Cell: NewLSTM32From(d.Cell),
		Att:  NewBilinear32From(d.Att),
		Out:  NewLinear32From(d.Out),
	}
}

// Confidence summarises how sure a decode was — the cascade routing signal.
// Margin is the top-1/top-2 separation: for beam search the gap between the
// best and second-best finished hypotheses' length-normalised log
// probabilities, for greedy decoding the worst per-step gap between the
// chosen token's log probability and the runner-up's. Posterior is the
// geometric-mean per-token probability of the winning hypothesis,
// exp(logProb/len). Both are +Inf/1 respectively when the decode had no
// competition (single beam, empty output).
type Confidence struct {
	Margin    float64
	Posterior float64
}

// Score folds both signals into one [0, 1] routing scalar:
//
//	score = min(Posterior, 1 - exp(-Margin))
//
// Either a weak posterior (the model thinks its own topic is unlikely) or a
// thin margin (a near-tie with a different topic) pulls the score down, and
// the serve-layer cascade escalates when it falls below the configured
// threshold. An infinite margin leaves the posterior in charge; a zero
// margin forces 0 regardless of posterior.
func (c Confidence) Score() float64 {
	s := 1 - math.Exp(-c.Margin)
	if c.Posterior < s {
		s = c.Posterior
	}
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// sureConfidence is the no-competition value: nothing decoded or nothing to
// compare against, so the cascade has no reason to escalate.
func sureConfidence() Confidence { return Confidence{Margin: math.Inf(1), Posterior: 1} }

// step advances one decode step, mirroring AttnDecoder.step.
func (d *AttnDecoder32) step(t *ag.Tape32, prev int, s State32, memory *tensor.Matrix32) (logits *tensor.Matrix32, next State32) {
	att := d.Att.Attention(t, s.H, memory) // 1×memRows
	ctx := t.MatMul(att, memory)           // 1×memDim
	x := t.ConcatCols2(d.Emb.Forward(t, []int{prev}), ctx)
	next = d.Cell.Step(t, x, s)
	logits = d.Out.Forward(t, t.ConcatCols2(next.H, ctx))
	return logits, next
}

// GreedyWithStates greedily decodes up to maxLen tokens and returns both
// the tokens (EOS excluded) and the decoder hidden states for the emitted
// steps, mirroring AttnDecoder.GreedyWithStates.
func (d *AttnDecoder32) GreedyWithStates(t *ag.Tape32, memory *tensor.Matrix32, bos, eos, maxLen int) ([]int, *tensor.Matrix32) {
	s := d.Cell.ZeroState(t)
	prev := bos
	var out []int
	var hs []*tensor.Matrix32
	for i := 0; i < maxLen; i++ {
		var logits *tensor.Matrix32
		logits, s = d.step(t, prev, s, memory)
		hs = append(hs, s.H)
		tok := logits.ArgmaxRow(0)
		if tok == eos {
			break
		}
		out = append(out, tok)
		prev = tok
	}
	return out, t.ConcatRows(hs...)
}

// Greedy decodes up to maxLen tokens, stopping at eos, and reports decode
// confidence: Margin is the worst per-step top-1/top-2 log-probability gap
// and Posterior the geometric-mean probability of the chosen path
// (EOS-emitting step included — a barely-chosen EOS is a real risk signal).
func (d *AttnDecoder32) Greedy(t *ag.Tape32, memory *tensor.Matrix32, bos, eos, maxLen int) ([]int, Confidence) {
	s := d.Cell.ZeroState(t)
	prev := bos
	var out []int
	var logpSum float64
	conf := sureConfidence()
	steps := 0
	for i := 0; i < maxLen; i++ {
		var logits *tensor.Matrix32
		logits, s = d.step(t, prev, s, memory)
		logp := t.LogSoftmaxRows(logits).Row(0)
		tok, margin := top2Gap32(logp)
		steps++
		logpSum += float64(logp[tok])
		if margin < conf.Margin {
			conf.Margin = margin
		}
		if tok == eos {
			break
		}
		out = append(out, tok)
		prev = tok
	}
	if steps > 0 {
		conf.Posterior = math.Exp(logpSum / float64(steps))
	}
	return out, conf
}

// top2Gap32 returns the argmax of row and the log-probability gap to the
// runner-up (+Inf for a 1-wide row).
func top2Gap32(row []float32) (int, float64) {
	best := 0
	for j, v := range row[1:] {
		if v > row[best] {
			best = j + 1
		}
	}
	second := math.Inf(-1)
	for j, v := range row {
		if j != best && float64(v) > second {
			second = float64(v)
		}
	}
	return best, float64(row[best]) - second
}
