package nn

import (
	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// ForwardBatch runs the Bi-LSTM over a ragged batch of sequences in
// lockstep, fusing each timestep's per-sequence 1-row recurrences into one
// B-row Step so the gate matmuls amortize panel packing and cache traffic
// across the batch. It returns one seq_i×2h node per input, each bitwise
// identical (up to the sign of zero, see tensor/kernels.go) to what Forward
// would produce for that sequence alone: every kernel in the Step chain
// computes output rows independently, and the gather/scatter helpers only
// move rows between the per-sequence matrices and the dense slab.
//
// Sequences of different lengths are handled by active-set compaction: step
// t gathers rows only from sequences still inside their length (the forward
// pass reads row t, the backward pass row len-1-t), so no padding rows are
// ever computed or written. Inference-only — intermediate states are not
// recorded for backprop beyond what the underlying tape records itself.
func (b *BiLSTM) ForwardBatch(t *ag.Tape, xs []*ag.Node) []*ag.Node {
	outs := make([]*tensor.Matrix, len(xs))
	for i, x := range xs {
		outs[i] = t.AllocValue(x.Rows(), b.Fwd.Hidden+b.Bwd.Hidden)
	}
	lstmLockstep(t, b.Fwd, xs, outs, 0, false)
	lstmLockstep(t, b.Bwd, xs, outs, b.Fwd.Hidden, true)
	nodes := make([]*ag.Node, len(xs))
	for i, m := range outs {
		nodes[i] = t.Const(m)
	}
	return nodes
}

// lstmLockstep advances l over all sequences at once, writing each hidden
// state into columns [colOff, colOff+h) of the owning sequence's output
// matrix. reverse selects the backward direction (input row len-1-t at step
// t, as in BiLSTM.Forward's second loop).
func lstmLockstep(t *ag.Tape, l *LSTM, xs []*ag.Node, outs []*tensor.Matrix, colOff int, reverse bool) {
	n := len(xs)
	if n == 0 {
		return
	}
	h := l.Hidden
	in, maxLen := xs[0].Cols(), 0
	for _, x := range xs {
		if x.Rows() > maxLen {
			maxLen = x.Rows()
		}
	}
	// Per-sequence running states, zero-initialised like ZeroState; each
	// step gathers the active ones into a slab and scatters the results
	// back, so a sequence's state never mixes with its neighbours'.
	hs := make([]*tensor.Matrix, n)
	cs := make([]*tensor.Matrix, n)
	for i := range xs {
		hs[i] = t.AllocValue(1, h)
		cs[i] = t.AllocValue(1, h)
	}
	var (
		active = make([]int, 0, n)
		mats   = make([]*tensor.Matrix, 0, n)
		rows   = make([]int, 0, n)
		zeros  = make([]int, n)
	)
	for step := 0; step < maxLen; step++ {
		active = active[:0]
		for i, x := range xs {
			if step < x.Rows() {
				active = append(active, i)
			}
		}
		a := len(active)
		// Gather this step's input row from every active sequence.
		x := t.AllocValue(a, in)
		mats, rows = mats[:0], rows[:0]
		for _, i := range active {
			pos := step
			if reverse {
				pos = xs[i].Rows() - 1 - step
			}
			mats = append(mats, xs[i].Value)
			rows = append(rows, pos)
		}
		tensor.GatherRowsInto(x, mats, rows)
		// Gather the active running states into a-row slabs.
		hp := t.AllocValue(a, h)
		cp := t.AllocValue(a, h)
		mats = mats[:0]
		for _, i := range active {
			mats = append(mats, hs[i])
		}
		tensor.GatherRowsInto(hp, mats, zeros[:a])
		mats = mats[:0]
		for _, i := range active {
			mats = append(mats, cs[i])
		}
		tensor.GatherRowsInto(cp, mats, zeros[:a])
		// One fused a-row step for all active sequences.
		st := l.Step(t, t.Const(x), State{H: t.Const(hp), C: t.Const(cp)})
		// Scatter the new states back and the hidden rows into the outputs.
		mats = mats[:0]
		for _, i := range active {
			mats = append(mats, hs[i])
		}
		tensor.ScatterRowsInto(mats, zeros[:a], st.H.Value)
		mats = mats[:0]
		for _, i := range active {
			mats = append(mats, cs[i])
		}
		tensor.ScatterRowsInto(mats, zeros[:a], st.C.Value)
		mats, rows = mats[:0], rows[:0]
		for _, i := range active {
			pos := step
			if reverse {
				pos = xs[i].Rows() - 1 - step
			}
			mats = append(mats, outs[i])
			rows = append(rows, pos)
		}
		tensor.ScatterRowSpansInto(mats, rows, colOff, st.H.Value)
	}
}
