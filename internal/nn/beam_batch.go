package nn

import (
	"sort"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// BeamSearchBatch runs BeamSearchScratch for several instances at once,
// fusing each decode depth's per-beam 1-row steps — across every live beam
// of every unfinished instance — into one R-row batched step. The cell and
// output matmuls see R rows instead of 1, which is where the batching win
// lives (one packed R×vocab projection per depth instead of R separate
// ones). Attention stays per-instance because each instance attends over its
// own memory, but the R-row hidden-state projection through Att.W is shared.
//
// Per instance the decode is exactly BeamSearchScratch: the same frontier
// ordering, the same topK tie-breaking, the same sort.SliceStable prune, the
// same done-beam claiming and the same ping-pong token pools, driven by that
// instance's own BeamScratch. Done beams contribute no slab row and finished
// instances drop out of the batch entirely (per-row early exit), so the
// decoded tokens are identical to width-many independent searches.
//
// memories[q] is instance q's decoder memory; scratches[q] may be nil (a
// throwaway scratch is used), as may the whole slice. The returned token
// slices are copied out and caller-owned; results[q] is nil when instance q
// decodes to nothing.
func (d *AttnDecoder) BeamSearchBatch(t *ag.Tape, memories []*ag.Node, bos, eos, width, maxLen int, scratches []*BeamScratch) [][]int {
	nInst := len(memories)
	results := make([][]int, nInst)
	if nInst == 0 {
		return results
	}
	type instSearch struct {
		bs    *BeamScratch
		beams []beam
		next  []beam
		pool  int
		live  bool
	}
	insts := make([]instSearch, nInst)
	for q := range insts {
		var bs *BeamScratch
		if q < len(scratches) {
			bs = scratches[q]
		}
		if bs == nil {
			bs = NewBeamScratch(0, width, maxLen)
		}
		insts[q] = instSearch{
			bs:    bs,
			beams: append(bs.cur[:0], beam{state: d.Cell.ZeroState(t)}),
			next:  bs.next[:0],
			live:  true,
		}
	}
	finalize := func(q int) {
		ist := &insts[q]
		best := ist.beams[0]
		for _, b := range ist.beams[1:] {
			if score(b) > score(best) {
				best = b
			}
		}
		toks := best.tokens
		if len(toks) > 0 && best.done {
			toks = toks[:len(toks)-1] // strip the trailing EOS
		}
		// Persist grown frontiers, then hand back a caller-owned copy.
		ist.bs.cur, ist.bs.next = ist.beams[:0], ist.next[:0]
		if len(toks) > 0 {
			results[q] = append([]int(nil), toks...)
		}
		ist.live = false
	}
	h := d.Cell.Hidden
	var (
		lo      = make([]int, nInst) // slab row range [lo, hi) per instance
		hi      = make([]int, nInst)
		rowOf = make([]int, 0, nInst)            // owning instance per slab row
		prev  = make([]int, 0, nInst)            // previous token per slab row
		hmats = make([]*tensor.Matrix, 0, nInst) // per-row H gather sources
		cmats = make([]*tensor.Matrix, 0, nInst) // per-row C gather sources
		zeros []int
		ctxs  = make([]*ag.Node, 0, nInst)
	)
	for depth := 0; depth < maxLen; depth++ {
		// Register one slab row per live beam, grouped per instance in
		// frontier order so instance attention blocks stay contiguous.
		rowOf, prev, hmats, cmats = rowOf[:0], prev[:0], hmats[:0], cmats[:0]
		for q := range insts {
			ist := &insts[q]
			if !ist.live {
				continue
			}
			lo[q] = len(rowOf)
			for _, b := range ist.beams {
				if b.done {
					continue
				}
				p := bos
				if len(b.tokens) > 0 {
					p = b.tokens[len(b.tokens)-1]
				}
				rowOf = append(rowOf, q)
				prev = append(prev, p)
				hmats = append(hmats, b.state.H.Value)
				cmats = append(cmats, b.state.C.Value)
			}
			hi[q] = len(rowOf)
		}
		r := len(rowOf)
		if r == 0 {
			break
		}
		for len(zeros) < r {
			zeros = append(zeros, 0)
		}
		// Gather every live beam's state into R-row slabs and take one
		// fused decoder step (attention, cell, output projection).
		hp := t.AllocValue(r, h)
		tensor.GatherRowsInto(hp, hmats, zeros[:r])
		cp := t.AllocValue(r, h)
		tensor.GatherRowsInto(cp, cmats, zeros[:r])
		hpN, cpN := t.Const(hp), t.Const(cp)
		hw := t.MatMul(hpN, t.Use(d.Att.W))
		ctxs = ctxs[:0]
		for q := range insts {
			if !insts[q].live || hi[q] == lo[q] {
				continue
			}
			sc := t.MatMulTransB(t.SliceRows(hw, lo[q], hi[q]), memories[q])
			att := t.SoftmaxRows(sc)
			ctxs = append(ctxs, t.MatMul(att, memories[q]))
		}
		ctx := ctxs[0]
		if len(ctxs) > 1 {
			ctx = t.ConcatRows(ctxs...)
		}
		x := t.ConcatCols2(d.Emb.Forward(t, prev), ctx)
		st := d.Cell.Step(t, x, State{H: hpN, C: cpN})
		logits := d.Out.Forward(t, t.ConcatCols2(st.H, ctx))
		logpAll := t.LogSoftmaxRows(logits)
		// Per-instance frontier bookkeeping, exactly as BeamSearchScratch.
		for q := range insts {
			ist := &insts[q]
			if !ist.live {
				continue
			}
			bs := ist.bs
			next := ist.next[:0]
			slot := 0
			row := lo[q]
			for _, b := range ist.beams {
				if b.done {
					b.tokens = bs.claim(ist.pool, slot, b.tokens)
					slot++
					next = append(next, b)
					continue
				}
				logp := logpAll.Value.Row(row)
				s := State{
					H: t.Const(t.ViewValue(1, h, st.H.Value.Row(row))),
					C: t.Const(t.ViewValue(1, h, st.C.Value.Row(row))),
				}
				row++
				for _, j := range bs.topK(logp, width) {
					toks := bs.claim(ist.pool, slot, b.tokens)
					slot++
					next = append(next, beam{
						tokens:  append(toks, j),
						logProb: b.logProb + logp[j],
						state:   s,
						done:    j == eos,
					})
				}
			}
			sort.SliceStable(next, func(i, j int) bool {
				return score(next[i]) > score(next[j])
			})
			if len(next) > width {
				next = next[:width]
			}
			ist.beams, ist.next = next, ist.beams
			ist.pool = 1 - ist.pool
			allDone := true
			for _, b := range ist.beams {
				if !b.done {
					allDone = false
					break
				}
			}
			if allDone {
				finalize(q)
			}
		}
	}
	for q := range insts {
		if insts[q].live {
			finalize(q)
		}
	}
	return results
}
