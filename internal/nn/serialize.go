package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"webbrief/internal/ag"
)

// ParamBlob is the serialised form of one parameter.
type ParamBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// SaveParams writes a layer's parameters to w with encoding/gob, in the
// stable order Params() defines.
func SaveParams(w io.Writer, l Layer) error {
	return EncodeParams(gob.NewEncoder(w), l)
}

// EncodeParams writes a layer's parameters through an existing gob encoder,
// for callers that serialise surrounding metadata with the same codec (gob
// decoders buffer ahead, so one stream must use one codec end to end).
func EncodeParams(enc *gob.Encoder, l Layer) error {
	ps := l.Params()
	blobs := make([]ParamBlob, len(ps))
	for i, p := range ps {
		blobs[i] = ParamBlob{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: p.Value.Data,
		}
	}
	return enc.Encode(blobs)
}

// LoadParams reads parameters written by SaveParams into an
// identically-architected layer. Names are not required to match (they
// embed construction seeds) but shapes and order must.
func LoadParams(r io.Reader, l Layer) error {
	return DecodeParams(gob.NewDecoder(r), l)
}

// DecodeParams is the decoder-sharing counterpart of EncodeParams.
func DecodeParams(dec *gob.Decoder, l Layer) error {
	var blobs []ParamBlob
	if err := dec.Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	ps := l.Params()
	if len(blobs) != len(ps) {
		return fmt.Errorf("nn: parameter count mismatch: file has %d, model has %d", len(blobs), len(ps))
	}
	for i, b := range blobs {
		p := ps[i]
		if b.Rows != p.Value.Rows || b.Cols != p.Value.Cols {
			return fmt.Errorf("nn: shape mismatch at %d (%s): file %dx%d, model %dx%d",
				i, p.Name, b.Rows, b.Cols, p.Value.Rows, p.Value.Cols)
		}
		copy(p.Value.Data, b.Data)
	}
	return nil
}

// paramsLayer adapts a raw parameter slice to the Layer interface, for
// serialising parameter groups that are not a single layer.
type paramsLayer []*ag.Param

// Params implements Layer.
func (p paramsLayer) Params() []*ag.Param { return p }

// WrapParams exposes a parameter slice as a Layer for Save/LoadParams.
func WrapParams(ps []*ag.Param) Layer { return paramsLayer(ps) }
