package nn

import (
	"fmt"
	"math"
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// TransformerConfig sizes a Transformer encoder. The defaults used by the
// experiments produce "MiniBERT" — the same architecture class as BERT_base
// (token+position+segment embeddings, multi-head self-attention, residual
// post-layer-norm blocks) scaled to CPU-trainable dimensions, the
// substitution recorded in DESIGN.md.
type TransformerConfig struct {
	Vocab    int
	Dim      int // model width; must be divisible by Heads
	Heads    int
	Layers   int
	FFDim    int // feed-forward inner width
	MaxLen   int // maximum sequence length for positional embeddings
	Segments int // number of segment types (BERTSUM uses 2 interval segments)
}

// Validate checks the configuration for internal consistency.
func (c TransformerConfig) Validate() error {
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("nn: Dim %d not divisible by Heads %d", c.Dim, c.Heads)
	}
	if c.Vocab <= 0 || c.Layers <= 0 || c.MaxLen <= 0 {
		return fmt.Errorf("nn: invalid transformer config %+v", c)
	}
	return nil
}

// MultiHeadSelfAttention is standard scaled dot-product attention with
// learned Q/K/V/output projections.
type MultiHeadSelfAttention struct {
	Wq, Wk, Wv, Wo *Linear
	Heads          int
	headDim        int
}

// NewMultiHeadSelfAttention returns an attention block of the given width.
func NewMultiHeadSelfAttention(name string, dim, heads int, rng *rand.Rand) *MultiHeadSelfAttention {
	return &MultiHeadSelfAttention{
		Wq:      NewLinear(name+".q", dim, dim, rng),
		Wk:      NewLinear(name+".k", dim, dim, rng),
		Wv:      NewLinear(name+".v", dim, dim, rng),
		Wo:      NewLinear(name+".o", dim, dim, rng),
		Heads:   heads,
		headDim: dim / heads,
	}
}

// Params implements Layer.
func (m *MultiHeadSelfAttention) Params() []*ag.Param {
	return CollectParams(m.Wq, m.Wk, m.Wv, m.Wo)
}

// Forward attends x (seq×dim) to itself. mask, if non-nil, is a seq×seq
// additive mask (0 for allowed, large negative for blocked positions).
func (m *MultiHeadSelfAttention) Forward(t *ag.Tape, x *ag.Node, mask *tensor.Matrix) *ag.Node {
	q := m.Wq.Forward(t, x)
	k := m.Wk.Forward(t, x)
	v := m.Wv.Forward(t, x)
	scale := 1 / math.Sqrt(float64(m.headDim))
	heads := make([]*ag.Node, m.Heads)
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*m.headDim, (h+1)*m.headDim
		qh := t.SliceCols(q, lo, hi)
		kh := t.SliceCols(k, lo, hi)
		vh := t.SliceCols(v, lo, hi)
		scores := t.Scale(t.MatMulTransB(qh, kh), scale)
		if mask != nil {
			scores = t.AddMasked(scores, mask)
		}
		heads[h] = t.MatMul(t.SoftmaxRows(scores), vh)
	}
	return m.Wo.Forward(t, t.ConcatCols(heads...))
}

// EncoderLayer is one post-LN transformer block.
type EncoderLayer struct {
	Attn *MultiHeadSelfAttention
	FF1  *Linear
	FF2  *Linear
	LN1  *LayerNorm
	LN2  *LayerNorm
}

// NewEncoderLayer returns one transformer block.
func NewEncoderLayer(name string, dim, heads, ffDim int, rng *rand.Rand) *EncoderLayer {
	return &EncoderLayer{
		Attn: NewMultiHeadSelfAttention(name+".attn", dim, heads, rng),
		FF1:  NewLinear(name+".ff1", dim, ffDim, rng),
		FF2:  NewLinear(name+".ff2", ffDim, dim, rng),
		LN1:  NewLayerNorm(name+".ln1", dim),
		LN2:  NewLayerNorm(name+".ln2", dim),
	}
}

// Params implements Layer.
func (e *EncoderLayer) Params() []*ag.Param {
	return CollectParams(e.Attn, e.FF1, e.FF2, e.LN1, e.LN2)
}

// Forward applies attention and feed-forward sublayers with residuals.
func (e *EncoderLayer) Forward(t *ag.Tape, x *ag.Node, mask *tensor.Matrix) *ag.Node {
	h := e.LN1.Forward(t, t.Add(x, e.Attn.Forward(t, x, mask)))
	ff := e.FF2.Forward(t, t.ReLU(e.FF1.Forward(t, h)))
	return e.LN2.Forward(t, t.Add(h, ff))
}

// Transformer is the MiniBERT encoder: token, position and segment
// embeddings summed, layer-normed, then passed through encoder blocks.
type Transformer struct {
	Config TransformerConfig
	Tok    *Embedding
	Pos    *Embedding
	Seg    *Embedding
	LNEmb  *LayerNorm
	Blocks []*EncoderLayer
}

// NewTransformer constructs a MiniBERT encoder; it panics on an invalid
// configuration because the sizes are compile-time constants in this
// codebase.
func NewTransformer(name string, cfg TransformerConfig, rng *rand.Rand) *Transformer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Segments <= 0 {
		cfg.Segments = 2
	}
	tr := &Transformer{
		Config: cfg,
		Tok:    NewEmbedding(name+".tok", cfg.Vocab, cfg.Dim, rng),
		Pos:    NewEmbedding(name+".pos", cfg.MaxLen, cfg.Dim, rng),
		Seg:    NewEmbedding(name+".seg", cfg.Segments, cfg.Dim, rng),
		LNEmb:  NewLayerNorm(name+".lnEmb", cfg.Dim),
	}
	for i := 0; i < cfg.Layers; i++ {
		tr.Blocks = append(tr.Blocks, NewEncoderLayer(fmt.Sprintf("%s.block%d", name, i), cfg.Dim, cfg.Heads, cfg.FFDim, rng))
	}
	return tr
}

// Params implements Layer.
func (tr *Transformer) Params() []*ag.Param {
	ps := CollectParams(tr.Tok, tr.Pos, tr.Seg, tr.LNEmb)
	for _, b := range tr.Blocks {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// Encode returns contextual embeddings (seq×dim) for token ids with segment
// ids segs (BERTSUM's alternating interval segments; pass nil for all-zero
// segments, plain-BERT style). Sequences longer than MaxLen are rejected —
// callers split documents into sub-documents first, exactly as §IV-A3 splits
// 2048-token pages into 512-token windows for BERT.
func (tr *Transformer) Encode(t *ag.Tape, ids, segs []int) *ag.Node {
	if len(ids) > tr.Config.MaxLen {
		panic(fmt.Sprintf("nn: sequence length %d exceeds MaxLen %d; split the document first", len(ids), tr.Config.MaxLen))
	}
	if segs == nil {
		segs = make([]int, len(ids))
	}
	if len(segs) != len(ids) {
		panic("nn: segs length mismatch")
	}
	pos := make([]int, len(ids))
	for i := range pos {
		pos[i] = i
	}
	x := t.Add(t.Add(tr.Tok.Forward(t, ids), tr.Pos.Forward(t, pos)), tr.Seg.Forward(t, segs))
	x = tr.LNEmb.Forward(t, x)
	for _, b := range tr.Blocks {
		x = b.Forward(t, x, nil)
	}
	return x
}

// EncodeWindows encodes a long document by splitting it into MaxLen windows
// and concatenating the outputs, the paper's sub-document workaround for
// BERT's input-length limit.
func (tr *Transformer) EncodeWindows(t *ag.Tape, ids, segs []int) *ag.Node {
	if segs == nil {
		segs = make([]int, len(ids))
	}
	if len(ids) <= tr.Config.MaxLen {
		return tr.Encode(t, ids, segs)
	}
	var parts []*ag.Node
	for lo := 0; lo < len(ids); lo += tr.Config.MaxLen {
		hi := lo + tr.Config.MaxLen
		if hi > len(ids) {
			hi = len(ids)
		}
		parts = append(parts, tr.Encode(t, ids[lo:hi], segs[lo:hi]))
	}
	return t.ConcatRows(parts...)
}
