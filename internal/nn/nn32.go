package nn

import (
	"fmt"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// Float32 serving mirrors of the basic layers. The student tier never
// trains, so these hold bare *tensor.Matrix32 weights instead of ag.Param
// (no gradient accumulator) and run on the value-level ag.Tape32. Each is
// built from a trained float64 layer with its New*32From converter —
// parameters cross the precision boundary exactly once, at student
// construction or snapshot load.

// Linear32 is the float32 serving form of Linear: y = x·W + b.
type Linear32 struct {
	W *tensor.Matrix32 // in×out
	B *tensor.Matrix32 // 1×out
}

// NewLinear32From converts a trained Linear to float32.
func NewLinear32From(l *Linear) *Linear32 {
	return &Linear32{W: tensor.ToMatrix32(l.W.Value), B: tensor.ToMatrix32(l.B.Value)}
}

// Forward applies the affine map to x (rows are examples or timesteps).
func (l *Linear32) Forward(t *ag.Tape32, x *tensor.Matrix32) *tensor.Matrix32 {
	return t.AddRowVector(t.MatMul(x, l.W), l.B)
}

// OutDim returns the layer's output width.
func (l *Linear32) OutDim() int { return l.W.Cols }

// Embedding32 is the float32 serving form of Embedding.
type Embedding32 struct {
	Table *tensor.Matrix32 // vocab×dim
}

// NewEmbedding32From converts a trained Embedding to float32.
func NewEmbedding32From(e *Embedding) *Embedding32 {
	return &Embedding32{Table: tensor.ToMatrix32(e.Table.Value)}
}

// Forward looks up the rows for ids, returning a len(ids)×dim matrix.
func (e *Embedding32) Forward(t *ag.Tape32, ids []int) *tensor.Matrix32 {
	for _, id := range ids {
		if id < 0 || id >= e.Table.Rows {
			panic(fmt.Sprintf("nn: embedding id %d out of range [0,%d)", id, e.Table.Rows))
		}
	}
	return t.Lookup(e.Table, ids)
}

// Dim returns the embedding width.
func (e *Embedding32) Dim() int { return e.Table.Cols }

// Vocab returns the number of rows in the table.
func (e *Embedding32) Vocab() int { return e.Table.Rows }

// Bilinear32 is the float32 serving form of Bilinear: scores a·W·bᵀ.
type Bilinear32 struct {
	W *tensor.Matrix32 // dimA×dimB
}

// NewBilinear32From converts a trained Bilinear to float32.
func NewBilinear32From(bl *Bilinear) *Bilinear32 {
	return &Bilinear32{W: tensor.ToMatrix32(bl.W.Value)}
}

// Scores returns a·W·bᵀ with shape rowsA×rowsB.
func (bl *Bilinear32) Scores(t *ag.Tape32, a, b *tensor.Matrix32) *tensor.Matrix32 {
	return t.MatMulTransB(t.MatMul(a, bl.W), b)
}

// Attention returns row-softmaxed scores.
func (bl *Bilinear32) Attention(t *ag.Tape32, a, b *tensor.Matrix32) *tensor.Matrix32 {
	return t.SoftmaxRows(bl.Scores(t, a, b))
}
