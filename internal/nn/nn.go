// Package nn provides the neural-network layers from which every model in
// this repository is assembled: linear projections, embeddings, LSTM and
// Bi-LSTM encoders (§III-C of the paper), bilinear attention (the dual-aware
// signal-exchange mechanisms), an attention decoder with beam search (the
// topic generator G), and a from-scratch transformer encoder that plays the
// role of BERT_base / BERTSUM at CPU-trainable scale.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// Layer is anything exposing trainable parameters.
type Layer interface {
	Params() []*ag.Param
}

// CollectParams flattens the parameters of several layers, preserving order
// so optimizer state is stable across runs.
func CollectParams(layers ...Layer) []*ag.Param {
	var out []*ag.Param
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}

// CopyParams copies parameter values from src into dst position-wise. Both
// layers must have identical architecture (same parameter count and
// shapes); it is how a pre-trained encoder is cloned into several models
// that each fine-tune their own copy.
func CopyParams(dst, src Layer) {
	dps, sps := dst.Params(), src.Params()
	if len(dps) != len(sps) {
		panic(fmt.Sprintf("nn: CopyParams count mismatch %d vs %d", len(dps), len(sps)))
	}
	for i, dp := range dps {
		sp := sps[i]
		if !dp.Value.SameShape(sp.Value) {
			panic(fmt.Sprintf("nn: CopyParams shape mismatch at %s/%s", dp.Name, sp.Name))
		}
		copy(dp.Value.Data, sp.Value.Data)
	}
}

// xavier returns the Glorot-uniform initialisation bound for a layer with
// the given fan-in and fan-out.
func xavier(in, out int) float64 { return math.Sqrt(6.0 / float64(in+out)) }

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *ag.Param // in×out
	B *ag.Param // 1×out
}

// NewLinear returns a Glorot-initialised linear layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	bound := xavier(in, out)
	return &Linear{
		W: ag.NewParam(name+".W", tensor.Uniform(in, out, -bound, bound, rng)),
		B: ag.NewParam(name+".B", tensor.New(1, out)),
	}
}

// Forward applies the affine map to x (rows are examples or timesteps).
func (l *Linear) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	return t.AddRowVector(t.MatMul(x, t.Use(l.W)), t.Use(l.B))
}

// Params implements Layer.
func (l *Linear) Params() []*ag.Param { return []*ag.Param{l.W, l.B} }

// OutDim returns the layer's output width.
func (l *Linear) OutDim() int { return l.W.Value.Cols }

// Embedding maps token ids to dense vectors via table lookup.
type Embedding struct {
	Table *ag.Param // vocab×dim
}

// NewEmbedding returns an embedding table initialised from N(0, 0.1²).
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{Table: ag.NewParam(name+".E", tensor.Randn(vocab, dim, 0.1, rng))}
}

// EmbeddingFromMatrix wraps a pre-trained matrix (e.g. GloVe vectors) as an
// embedding layer; the matrix continues to receive gradients (fine-tuning).
func EmbeddingFromMatrix(name string, m *tensor.Matrix) *Embedding {
	return &Embedding{Table: ag.NewParam(name+".E", m)}
}

// Forward looks up the rows for ids, returning a len(ids)×dim node.
func (e *Embedding) Forward(t *ag.Tape, ids []int) *ag.Node {
	for _, id := range ids {
		if id < 0 || id >= e.Table.Value.Rows {
			panic(fmt.Sprintf("nn: embedding id %d out of range [0,%d)", id, e.Table.Value.Rows))
		}
	}
	return t.Lookup(t.Use(e.Table), ids)
}

// Params implements Layer.
func (e *Embedding) Params() []*ag.Param { return []*ag.Param{e.Table} }

// Dim returns the embedding width.
func (e *Embedding) Dim() int { return e.Table.Value.Cols }

// Vocab returns the number of rows in the table.
func (e *Embedding) Vocab() int { return e.Table.Value.Rows }

// LayerNorm standardises each row and applies a learned gain and bias.
type LayerNorm struct {
	Gain *ag.Param // 1×dim
	Bias *ag.Param // 1×dim
	Eps  float64
}

// NewLayerNorm returns a layer norm with unit gain and zero bias.
func NewLayerNorm(name string, dim int) *LayerNorm {
	return &LayerNorm{
		Gain: ag.NewParam(name+".g", tensor.Full(1, dim, 1)),
		Bias: ag.NewParam(name+".b", tensor.New(1, dim)),
		Eps:  1e-5,
	}
}

// Forward applies normalisation to each row of x.
func (ln *LayerNorm) Forward(t *ag.Tape, x *ag.Node) *ag.Node {
	normed := t.RowNorm(x, ln.Eps)
	return t.AddRowVector(t.MulRowVector(normed, t.Use(ln.Gain)), t.Use(ln.Bias))
}

// Params implements Layer.
func (ln *LayerNorm) Params() []*ag.Param { return []*ag.Param{ln.Gain, ln.Bias} }

// Bilinear computes attention scores a·W·bᵀ, the form used throughout the
// paper: A_T = softmax(H·W_AT·Rᵀ) for identification distillation and
// A_E = softmax(C_E·W_AE·Q) for the dual-aware mechanisms.
type Bilinear struct {
	W *ag.Param // dimA×dimB
}

// NewBilinear returns a Glorot-initialised bilinear form.
func NewBilinear(name string, dimA, dimB int, rng *rand.Rand) *Bilinear {
	bound := xavier(dimA, dimB)
	return &Bilinear{W: ag.NewParam(name+".W", tensor.Uniform(dimA, dimB, -bound, bound, rng))}
}

// Scores returns a·W·bᵀ with shape rowsA×rowsB.
func (bl *Bilinear) Scores(t *ag.Tape, a, b *ag.Node) *ag.Node {
	return t.MatMulTransB(t.MatMul(a, t.Use(bl.W)), b)
}

// Attention returns row-softmaxed scores.
func (bl *Bilinear) Attention(t *ag.Tape, a, b *ag.Node) *ag.Node {
	return t.SoftmaxRows(bl.Scores(t, a, b))
}

// Params implements Layer.
func (bl *Bilinear) Params() []*ag.Param { return []*ag.Param{bl.W} }
