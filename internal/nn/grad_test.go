package nn

import (
	"math"
	"math/rand"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// layerGradCheck compares analytic parameter gradients of a scalar-loss
// graph against central finite differences, for whole layers rather than
// single ops (the ag package already covers ops; this guards layer
// composition: gate slicing, state threading, residuals, attention heads).
func layerGradCheck(t *testing.T, name string, params []*ag.Param, build func(tp *ag.Tape) *ag.Node) {
	t.Helper()
	forward := func() float64 { return build(ag.NewTape()).Value.Data[0] }
	tp := ag.NewTape()
	loss := build(tp)
	for _, p := range params {
		p.ZeroGrad()
	}
	tp.Backward(loss)
	const h = 1e-6
	for _, p := range params {
		// Sample a handful of coordinates per parameter; full sweeps over
		// transformer weights would dominate the test run for no extra
		// signal.
		stride := len(p.Value.Data)/5 + 1
		for i := 0; i < len(p.Value.Data); i += stride {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			up := forward()
			p.Value.Data[i] = orig - h
			down := forward()
			p.Value.Data[i] = orig
			want := (up - down) / (2 * h)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-3*math.Max(1, math.Abs(want)) {
				t.Fatalf("%s: %s grad[%d] = %v, finite-diff %v", name, p.Name, i, got, want)
			}
		}
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM("l", 3, 4, rng)
	x := tensor.Randn(5, 3, 0.8, rng)
	layerGradCheck(t, "lstm", l.Params(), func(tp *ag.Tape) *ag.Node {
		return tp.Mean(tp.Tanh(l.Forward(tp, tp.Const(x))))
	})
}

func TestBiLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewBiLSTM("b", 3, 3, rng)
	x := tensor.Randn(4, 3, 0.8, rng)
	layerGradCheck(t, "bilstm", b.Params(), func(tp *ag.Tape) *ag.Node {
		return tp.Mean(b.Forward(tp, tp.Const(x)))
	})
}

func TestTransformerGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := TransformerConfig{Vocab: 12, Dim: 8, Heads: 2, Layers: 1, FFDim: 8, MaxLen: 6}
	tr := NewTransformer("bert", cfg, rng)
	ids := []int{1, 5, 3}
	layerGradCheck(t, "transformer", tr.Params(), func(tp *ag.Tape) *ag.Node {
		return tp.Mean(tr.Encode(tp, ids, nil))
	})
}

func TestAttnDecoderGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewAttnDecoder("d", 9, 4, 5, 6, rng)
	mem := tensor.Randn(3, 6, 0.8, rng)
	inputs := []int{0, 4, 7}
	targets := []int{4, 7, 1}
	layerGradCheck(t, "decoder", d.Params(), func(tp *ag.Tape) *ag.Node {
		logits := d.ForwardTeacherForcing(tp, tp.Const(mem), inputs)
		return tp.CrossEntropy(logits, targets)
	})
}

func TestLayerNormGradCheck(t *testing.T) {
	ln := NewLayerNorm("ln", 6)
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(3, 6, 1.2, rng)
	w := tensor.Randn(3, 6, 1, rng)
	layerGradCheck(t, "layernorm", ln.Params(), func(tp *ag.Tape) *ag.Node {
		return tp.Sum(tp.Mul(ln.Forward(tp, tp.Const(x)), tp.Const(w)))
	})
}
