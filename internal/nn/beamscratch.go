package nn

import (
	"sort"

	"webbrief/internal/tensor"

	"webbrief/internal/ag"
)

// BeamScratch holds the reusable buffers for one beam search: the
// log-softmax row, the top-K index scratch, the two beam frontiers, and the
// per-slot token backing arrays. A warm scratch makes BeamSearchScratch
// allocation-free apart from the copied-out result.
//
// Token buffers live in two pools that ping-pong between decode depths:
// candidates at depth d write pool d%2 and read the surviving beams' tokens
// from pool (d+1)%2, so no live hypothesis ever aliases a slot being
// rewritten. Done hypotheses are re-copied into the write pool each depth to
// keep that invariant. A scratch must not be shared between concurrent
// searches — give each serving replica its own (see wb.InferScratch).
type BeamScratch struct {
	logp  tensor.Matrix // 1×vocab log-softmax scratch, header reused
	idx   []int         // top-K selection scratch
	cur   []beam        // frontier at the current depth
	next  []beam        // candidate frontier being built
	pools [2][][]int    // per-slot token backing arrays
}

// NewBeamScratch returns a scratch presized for the given vocabulary size,
// beam width and decode depth. All buffers still grow on demand, so a
// zero-value-like NewBeamScratch(0, 0, 0) is valid and merely warms up lazily.
func NewBeamScratch(vocab, width, maxLen int) *BeamScratch {
	bs := &BeamScratch{}
	if vocab > 0 {
		bs.logp.Data = make([]float64, vocab)
		bs.idx = make([]int, 0, vocab)
	}
	if width > 0 {
		slots := width*width + width
		bs.cur = make([]beam, 0, slots)
		bs.next = make([]beam, 0, slots)
		for p := range bs.pools {
			bs.pools[p] = make([][]int, slots)
			for s := range bs.pools[p] {
				bs.pools[p][s] = make([]int, 0, maxLen+1)
			}
		}
	}
	return bs
}

// logSoftmaxRow computes the log-softmax of the 1×vocab logits row into the
// scratch buffer through the shared tensor kernel, so the values are
// bitwise identical to Matrix.LogSoftmaxRows on the heap path.
func (bs *BeamScratch) logSoftmaxRow(logits *tensor.Matrix) []float64 {
	n := logits.Cols
	if cap(bs.logp.Data) < n {
		bs.logp.Data = make([]float64, n)
	}
	bs.logp.Rows, bs.logp.Cols, bs.logp.Data = 1, n, bs.logp.Data[:n]
	tensor.LogSoftmaxRowsInto(&bs.logp, logits)
	return bs.logp.Data
}

// topK selects the indices of the k largest values in xs in descending value
// order, ties broken toward the lower index — exactly the order
// sort.SliceStable over ascending indices produces — without sorting the
// whole vocabulary. The returned slice aliases the scratch.
func (bs *BeamScratch) topK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := bs.idx[:0]
	for i, v := range xs {
		if len(idx) == k {
			if !(v > xs[idx[k-1]]) { // ties keep the earlier index
				continue
			}
			idx = idx[:k-1]
		}
		// Insert before the first kept index with a strictly smaller value;
		// equal values keep their earlier position (stability).
		p := len(idx)
		for p > 0 && xs[idx[p-1]] < v {
			p--
		}
		idx = append(idx, 0)
		copy(idx[p+1:], idx[p:])
		idx[p] = i
	}
	bs.idx = idx[:0]
	return idx
}

// claim copies src into slot s of the given token pool and returns it with
// room for one appended token.
func (bs *BeamScratch) claim(pool, s int, src []int) []int {
	for s >= len(bs.pools[pool]) {
		bs.pools[pool] = append(bs.pools[pool], nil)
	}
	buf := bs.pools[pool][s]
	if cap(buf) < len(src)+1 {
		buf = make([]int, 0, len(src)+8)
	}
	buf = buf[:len(src)]
	copy(buf, src)
	bs.pools[pool][s] = buf
	return buf
}

// BeamSearchScratch is BeamSearch decoding through a reusable scratch:
// identical hypotheses, scores and tie-breaking (the candidate prune
// reproduces sort.SliceStable ordering), but no per-candidate allocation.
// A nil scratch falls back to a throwaway one. The returned tokens are
// copied out and caller-owned.
func (d *AttnDecoder) BeamSearchScratch(t *ag.Tape, memory *ag.Node, bos, eos, width, maxLen int, bs *BeamScratch) []int {
	if bs == nil {
		bs = NewBeamScratch(0, width, maxLen)
	}
	pool := 0
	beams := append(bs.cur[:0], beam{state: d.Cell.ZeroState(t)})
	next := bs.next[:0]
	for depth := 0; depth < maxLen; depth++ {
		next = next[:0]
		slot := 0
		for _, b := range beams {
			if b.done {
				b.tokens = bs.claim(pool, slot, b.tokens)
				slot++
				next = append(next, b)
				continue
			}
			prev := bos
			if len(b.tokens) > 0 {
				prev = b.tokens[len(b.tokens)-1]
			}
			logits, s := d.step(t, prev, b.state, memory)
			logp := bs.logSoftmaxRow(logits.Value)
			// Expand only the top `width` continuations of this beam;
			// expanding more can never survive the global prune below.
			for _, j := range bs.topK(logp, width) {
				toks := bs.claim(pool, slot, b.tokens)
				slot++
				next = append(next, beam{
					tokens:  append(toks, j),
					logProb: b.logProb + logp[j],
					state:   s,
					done:    j == eos,
				})
			}
		}
		sort.SliceStable(next, func(i, j int) bool {
			return score(next[i]) > score(next[j])
		})
		if len(next) > width {
			next = next[:width]
		}
		beams, next = next, beams
		pool = 1 - pool
		allDone := true
		for _, b := range beams {
			if !b.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	best := beams[0]
	for _, b := range beams[1:] {
		if score(b) > score(best) {
			best = b
		}
	}
	toks := best.tokens
	if len(toks) > 0 && best.done {
		toks = toks[:len(toks)-1] // strip the trailing EOS
	}
	// Persist grown frontiers, then hand back a caller-owned copy.
	bs.cur, bs.next = beams[:0], next[:0]
	if len(toks) == 0 {
		return nil
	}
	return append([]int(nil), toks...)
}
