package baselines

import (
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// Exchange selects the signal-exchange mechanism of a joint baseline
// (§IV-A6-ii).
type Exchange int

// Signal-exchange variants.
const (
	// ExchangeNone is Naive-Join: shared encoder, summed loss, no exchange.
	ExchangeNone Exchange = iota
	// ExchangeConcat is Con-Extractor: the generator's final topic state is
	// concatenated onto every token representation.
	ExchangeConcat
	// ExchangeAverage is Ave-Extractor: the mean of the topic states is
	// concatenated instead.
	ExchangeAverage
	// ExchangeAttn is Att-Extractor: topic-aware attention re-weighting of
	// token representations (the dual-aware mechanism minus the
	// section-aware part); the generator stays basic.
	ExchangeAttn
	// ExchangeAttnBoth is Att-Extractor+Att-Generator: attention-based
	// exchange in both directions, still without section signals.
	ExchangeAttnBoth
	// ExchangePipeline is Pip-Extractor+Pip-Generator: topic-dependent and
	// section-dependent representations learned in sequence (pipeline), so
	// section signals are used but not fused in one dual-aware attention.
	ExchangePipeline
)

// exchangeNames maps variants to the paper's system names.
var exchangeNames = map[Exchange]string{
	ExchangeNone:     "Naive-Join",
	ExchangeConcat:   "Con-Extractor",
	ExchangeAverage:  "Ave-Extractor",
	ExchangeAttn:     "Att-Extractor",
	ExchangeAttnBoth: "Att-Extractor+Att-Generator",
	ExchangePipeline: "Pip-Extractor+Pip-Generator",
}

// Joint is the family of jointly trained baselines. Joint-WB itself lives
// in package wb; Joint covers everything it is compared against in Tables
// VIII and IX.
type Joint struct {
	ModelName string
	Variant   Exchange
	Enc       wb.DocEncoder

	ExtLSTM *nn.BiLSTM
	GenLSTM *nn.BiLSTM
	MemPr   *nn.Linear
	MemPr2  *nn.Linear // pipeline/att-both: projects enriched memory
	Dec     *nn.AttnDecoder
	TagW    *nn.Linear

	WQ   *nn.Linear   // integrated topic representation
	AttE *nn.Bilinear // extractor-side attention
	WE   *nn.Linear   // integrated attribute representation
	AttG *nn.Linear   // generator-side attention
	Sec  *wb.SectionPredictor
	WCE  *nn.Linear // pipeline section-dependent token reps
	WCG  *nn.Linear // pipeline section-dependent sentence reps

	Dropout  float64
	TopicLen int
	rng      *rand.Rand
}

// NewJoint builds a joint baseline of the given variant over enc.
func NewJoint(variant Exchange, enc wb.DocEncoder, vocab, hidden int, seed int64) *Joint {
	rng := rand.New(rand.NewSource(seed))
	d := enc.Dim()
	bi := 2 * hidden
	name := exchangeNames[variant]
	m := &Joint{
		ModelName: name,
		Variant:   variant,
		Enc:       enc,
		ExtLSTM:   nn.NewBiLSTM(name+".ext", d, hidden, rng),
		GenLSTM:   nn.NewBiLSTM(name+".gen", d, hidden, rng),
		MemPr:     nn.NewLinear(name+".mem", bi, hidden, rng),
		Dec:       nn.NewAttnDecoder(name+".dec", vocab, hidden, hidden, hidden, rng),
		Dropout:   0.2,
		TopicLen:  4,
		rng:       rng,
	}
	tagIn := bi
	switch variant {
	case ExchangeConcat, ExchangeAverage:
		tagIn = bi + hidden
		m.WQ = nn.NewLinear(name+".wq", hidden, hidden, rng)
	case ExchangeAttn:
		tagIn = bi + hidden
		m.WQ = nn.NewLinear(name+".wq", hidden, hidden, rng)
		m.AttE = nn.NewBilinear(name+".attE", bi, hidden, rng)
	case ExchangeAttnBoth:
		tagIn = bi + hidden
		m.WQ = nn.NewLinear(name+".wq", hidden, hidden, rng)
		m.AttE = nn.NewBilinear(name+".attE", bi, hidden, rng)
		m.WE = nn.NewLinear(name+".we", bi, bi, rng)
		m.AttG = nn.NewLinear(name+".attG", bi, 1, rng)
		m.MemPr2 = nn.NewLinear(name+".mem2", 2*bi, hidden, rng)
	case ExchangePipeline:
		tagIn = hidden
		m.WQ = nn.NewLinear(name+".wq", hidden, hidden, rng)
		m.AttE = nn.NewBilinear(name+".attE", bi, hidden, rng)
		m.WE = nn.NewLinear(name+".we", bi, bi, rng)
		m.AttG = nn.NewLinear(name+".attG", bi, 1, rng)
		m.Sec = wb.NewSectionPredictor(name+".sec", d, rng)
		m.WCE = nn.NewLinear(name+".wce", bi+hidden+1, hidden, rng)
		m.WCG = nn.NewLinear(name+".wcg", 2*bi+1, hidden, rng)
		m.MemPr2 = nn.NewLinear(name+".mem2", hidden, hidden, rng)
	}
	m.TagW = nn.NewLinear(name+".tag", tagIn, 3, rng)
	return m
}

// Name implements wb.Model.
func (m *Joint) Name() string { return m.ModelName }

// Params implements nn.Layer.
func (m *Joint) Params() []*ag.Param {
	ps := nn.CollectParams(m.Enc, m.ExtLSTM, m.GenLSTM, m.MemPr, m.Dec, m.TagW)
	for _, l := range []nn.Layer{m.MemPr2, m.WQ, m.AttE, m.WE, m.AttG, m.Sec, m.WCE, m.WCG} {
		if l != nil && !isNilLayer(l) {
			ps = append(ps, l.Params()...)
		}
	}
	return ps
}

// isNilLayer guards against typed-nil interface values from the optional
// fields above.
func isNilLayer(l nn.Layer) bool {
	switch v := l.(type) {
	case *nn.Linear:
		return v == nil
	case *nn.Bilinear:
		return v == nil
	case *wb.SectionPredictor:
		return v == nil
	}
	return l == nil
}

// broadcastRow repeats a 1×d row n times.
func broadcastRow(t *ag.Tape, row *ag.Node, n int) *ag.Node {
	return t.MatMul(t.Const(tensor.Full(n, 1, 1)), row)
}

// colSoftmax applies a softmax across the rows of an l×1 score column.
func colSoftmax(t *ag.Tape, col *ag.Node) *ag.Node {
	return t.Transpose(t.SoftmaxRows(t.Transpose(col)))
}

// Forward implements wb.Model.
func (m *Joint) Forward(t *ag.Tape, inst *wb.Instance, mode wb.Mode) *wb.Output {
	tok, sent := m.Enc.EncodeDoc(t, inst)
	if mode == wb.Train && m.Dropout > 0 {
		tok = t.Dropout(tok, m.Dropout, m.rng)
		sent = t.Dropout(sent, m.Dropout, m.rng)
	}
	cE := m.ExtLSTM.Forward(t, tok)
	cG := m.GenLSTM.Forward(t, sent)
	mem := m.MemPr.Forward(t, cG)

	// First decoding pass: topic states Q (teacher-forced in training,
	// greedy otherwise), needed by every exchanging variant.
	var topicStates *ag.Node
	if mode.TeacherForced() {
		_, topicStates = m.Dec.ForwardStates(t, mem, inst.TopicIn)
	} else {
		_, topicStates = m.Dec.GreedyWithStates(t, mem, textproc.BosID, textproc.EosID, m.TopicLen)
	}

	out := &wb.Output{TokenH: cE, SentH: cG, TopicStates: topicStates, Dec: m.Dec}

	var secLogits, secProbs *ag.Node
	if m.Sec != nil {
		secLogits = m.Sec.Forward(t, sent)
		secProbs = t.Sigmoid(secLogits)
		out.SecLogits = secLogits
	}

	// Extractor side.
	switch m.Variant {
	case ExchangeNone:
		out.TagLogits = m.TagW.Forward(t, cE)
	case ExchangeConcat:
		last := t.SliceRows(topicStates, topicStates.Rows()-1, topicStates.Rows())
		qb := t.Tanh(m.WQ.Forward(t, last))
		out.TagLogits = m.TagW.Forward(t, t.ConcatCols(cE, broadcastRow(t, qb, cE.Rows())))
	case ExchangeAverage:
		qb := t.Tanh(m.WQ.Forward(t, t.MeanRows(topicStates)))
		out.TagLogits = m.TagW.Forward(t, t.ConcatCols(cE, broadcastRow(t, qb, cE.Rows())))
	case ExchangeAttn, ExchangeAttnBoth:
		qb := t.Tanh(m.WQ.Forward(t, t.MeanRows(topicStates)))
		aE := colSoftmax(t, m.AttE.Scores(t, cE, qb))
		out.TagLogits = m.TagW.Forward(t, t.ConcatCols(cE, t.MatMul(aE, qb)))
	case ExchangePipeline:
		// Stage 1: topic-dependent representation.
		qb := t.Tanh(m.WQ.Forward(t, t.MeanRows(topicStates)))
		aE := colSoftmax(t, m.AttE.Scores(t, cE, qb))
		topicDep := t.ConcatCols(cE, t.MatMul(aE, qb))
		// Stage 2: section-dependent representation.
		pTok := t.GatherRows(secProbs, inst.SentOf)
		secDep := t.Tanh(m.WCE.Forward(t, t.ConcatCols(topicDep, pTok)))
		out.TagLogits = m.TagW.Forward(t, secDep)
	}

	// Generator side: which memory feeds the final decode.
	finalMem := mem
	switch m.Variant {
	case ExchangeAttnBoth:
		eb := t.Tanh(m.WE.Forward(t, t.MeanRows(cE)))
		aG := colSoftmax(t, m.AttG.Forward(t, t.Mul(cG, broadcastRow(t, eb, cG.Rows()))))
		finalMem = m.MemPr2.Forward(t, t.ConcatCols(cG, t.MatMul(aG, eb)))
	case ExchangePipeline:
		eb := t.Tanh(m.WE.Forward(t, t.MeanRows(cE)))
		aG := colSoftmax(t, m.AttG.Forward(t, t.Mul(cG, broadcastRow(t, eb, cG.Rows()))))
		attrDep := t.ConcatCols(cG, t.MatMul(aG, eb))
		secDep := t.Tanh(m.WCG.Forward(t, t.ConcatCols(attrDep, secProbs)))
		finalMem = m.MemPr2.Forward(t, secDep)
	}
	out.Memory = finalMem
	if mode.TeacherForced() {
		out.TopicLogits = m.Dec.ForwardTeacherForcing(t, finalMem, inst.TopicIn)
	}
	return out
}
