package baselines

import (
	"math/rand"
	"testing"

	"webbrief/internal/ag"
	"webbrief/internal/corpus"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

func testData(t testing.TB, domains, pages int) ([]*wb.Instance, *textproc.Vocab) {
	t.Helper()
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: pages, SeenDomains: domains, UnseenDomains: 0})
	if err != nil {
		t.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	return wb.NewInstances(ds.Pages, v, 0), v
}

func gloveEnc(v *textproc.Vocab, dim int, seed int64) *wb.GloVeEncoder {
	rng := rand.New(rand.NewSource(seed))
	return wb.NewGloVeEncoder(tensor.Randn(v.Size(), dim, 0.1, rng))
}

func TestSingleExtractorVariants(t *testing.T) {
	insts, v := testData(t, 2, 1)
	inst := insts[0]
	for _, tc := range []struct {
		name                     string
		priorSection, priorTopic bool
	}{
		{"plain", false, false},
		{"+prior section", true, false},
		{"+prior topic", false, true},
		{"both priors", true, true},
	} {
		m := NewSingleExtractor("ext "+tc.name, gloveEnc(v, 12, 1), v.Size(), 8, tc.priorSection, tc.priorTopic, 2)
		tp := ag.NewTape()
		out := m.Forward(tp, inst, wb.Train)
		if out.TagLogits == nil || out.TagLogits.Rows() != inst.NumTokens() || out.TagLogits.Cols() != 3 {
			t.Fatalf("%s: bad tag logits", tc.name)
		}
		if out.TopicLogits != nil || out.Memory != nil {
			t.Fatalf("%s: extractor must not generate", tc.name)
		}
		loss := wb.Loss(tp, out, inst)
		tp.Backward(loss)
		for _, p := range m.Params() {
			if p.Grad.MaxAbs() == 0 {
				t.Fatalf("%s: no grad to %s", tc.name, p.Name)
			}
		}
	}
}

func TestSingleGeneratorVariants(t *testing.T) {
	insts, v := testData(t, 2, 1)
	inst := insts[0]
	for _, prior := range []bool{false, true} {
		m := NewSingleGenerator("gen", gloveEnc(v, 12, 3), v.Size(), 8, prior, 4)
		tp := ag.NewTape()
		out := m.Forward(tp, inst, wb.Train)
		if out.TopicLogits == nil || out.TopicLogits.Rows() != len(inst.TopicIn) {
			t.Fatalf("prior=%v: bad topic logits", prior)
		}
		if out.TagLogits != nil {
			t.Fatal("generator must not tag")
		}
		loss := wb.Loss(tp, out, inst)
		tp.Backward(loss)
		for _, p := range m.Params() {
			if p.Grad.MaxAbs() == 0 {
				t.Fatalf("prior=%v: no grad to %s", prior, p.Name)
			}
		}
		// Eval mode must expose memory + decoder for beam search.
		tp2 := ag.NewTape()
		out2 := m.Forward(tp2, inst, wb.Eval)
		if out2.Memory == nil || out2.Dec == nil {
			t.Fatal("generator eval output incomplete")
		}
	}
}

func TestAllJointVariantsForwardAndBackward(t *testing.T) {
	insts, v := testData(t, 2, 1)
	inst := insts[0]
	variants := []Exchange{
		ExchangeNone, ExchangeConcat, ExchangeAverage,
		ExchangeAttn, ExchangeAttnBoth, ExchangePipeline,
	}
	for _, variant := range variants {
		m := NewJoint(variant, gloveEnc(v, 12, 5), v.Size(), 8, 6)
		tp := ag.NewTape()
		out := m.Forward(tp, inst, wb.Train)
		if out.TagLogits == nil || out.TopicLogits == nil {
			t.Fatalf("%s: joint model must produce both heads", m.Name())
		}
		if variant == ExchangePipeline && out.SecLogits == nil {
			t.Fatalf("%s: pipeline must predict sections", m.Name())
		}
		if variant != ExchangePipeline && out.SecLogits != nil {
			t.Fatalf("%s: unexpected section head", m.Name())
		}
		loss := wb.Loss(tp, out, inst)
		tp.Backward(loss)
		for _, p := range m.Params() {
			if p.Grad.MaxAbs() == 0 {
				t.Fatalf("%s: no grad to %s", m.Name(), p.Name)
			}
		}
	}
}

func TestJointVariantNames(t *testing.T) {
	want := map[Exchange]string{
		ExchangeNone:     "Naive-Join",
		ExchangeConcat:   "Con-Extractor",
		ExchangeAverage:  "Ave-Extractor",
		ExchangeAttn:     "Att-Extractor",
		ExchangeAttnBoth: "Att-Extractor+Att-Generator",
		ExchangePipeline: "Pip-Extractor+Pip-Generator",
	}
	_, v := testData(t, 1, 1)
	for variant, name := range want {
		m := NewJoint(variant, gloveEnc(v, 8, 1), v.Size(), 4, 1)
		if m.Name() != name {
			t.Errorf("variant %d named %q, want %q", variant, m.Name(), name)
		}
	}
}

// The priors must genuinely change model behaviour: with prior section
// knowledge the extractor sees the gold section column, so its output on an
// instance must differ from the plain model's.
func TestPriorSectionChangesOutput(t *testing.T) {
	insts, v := testData(t, 1, 1)
	inst := insts[0]
	plain := NewSingleExtractor("plain", gloveEnc(v, 12, 7), v.Size(), 8, false, false, 8)
	prior := NewSingleExtractor("prior", gloveEnc(v, 12, 7), v.Size(), 8, true, false, 8)
	tp := ag.NewTape()
	o1 := plain.Forward(tp, inst, wb.Eval)
	o2 := prior.Forward(tp, inst, wb.Eval)
	if o1.TagLogits.Value.Equal(o2.TagLogits.Value, 1e-12) {
		t.Fatal("prior section signal had no effect")
	}
}

// Smoke-train Naive-Join and verify both tasks improve above chance.
func TestNaiveJoinLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	insts, v := testData(t, 2, 6)
	m := NewJoint(ExchangeNone, gloveEnc(v, 16, 9), v.Size(), 16, 10)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 20
	losses := wb.TrainModel(m, insts, tc)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss not decreasing: %v", losses)
	}
	prf := wb.EvaluateExtraction(m, insts)
	if prf.F1 < 50 {
		t.Fatalf("extraction F1 %.1f", prf.F1)
	}
	em, _ := wb.EvaluateTopics(m, insts, v, 1, 4)
	if em < 50 {
		t.Fatalf("topic EM %.1f", em)
	}
}

func BenchmarkJointForwardPipeline(b *testing.B) {
	ds, _ := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 1, SeenDomains: 2, UnseenDomains: 0})
	v := corpus.BuildVocab(ds.Pages)
	insts := wb.NewInstances(ds.Pages, v, 0)
	m := NewJoint(ExchangePipeline, gloveEnc(v, 16, 1), v.Size(), 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := ag.NewTape()
		m.Forward(tp, insts[i%len(insts)], wb.Eval)
	}
}
