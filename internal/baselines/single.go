// Package baselines implements every comparison system of §IV-A6:
//
// Single-task models (Tables VI, VII):
//   - *→Bi-LSTM extractors and *→[Bi-LSTM, LSTM] generators over any
//     document encoder (GloVe / MiniBERT / MiniBERTSUM),
//   - their "+prior section" and "+prior topic" variants, which concatenate
//     given prior knowledge to the representations (ATAE-LSTM style).
//
// Joint models (Tables VIII, IX):
//   - Naive-Join (shared encoder, summed loss, no signal exchange),
//   - Con-/Ave-Extractor (concatenation-based exchange),
//   - Att-Extractor and Att-Extractor+Att-Generator (attention-based
//     exchange without the section-aware part),
//   - Pip-Extractor+Pip-Generator (pipelined topic-dependent then
//     section-dependent representation learning).
//
// All models implement wb.Model, so the trainer, the evaluator and the
// distillation framework treat them uniformly.
package baselines

import (
	"math/rand"

	"webbrief/internal/ag"
	"webbrief/internal/nn"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// SingleExtractor is the *→Bi-LSTM single-task attribute extractor.
type SingleExtractor struct {
	ModelName    string
	Enc          wb.DocEncoder
	LSTM         *nn.BiLSTM
	Out          *nn.Linear
	PriorSection bool          // concat gold informative flags (ATAE-style)
	PriorTopic   bool          // concat gold topic representation
	TopicEmb     *nn.Embedding // embeds gold topic tokens for PriorTopic
	Dropout      float64
	rng          *rand.Rand
}

// NewSingleExtractor builds an extractor over enc. vocab sizes the topic
// embedding used by the +prior topic variant.
func NewSingleExtractor(name string, enc wb.DocEncoder, vocab, hidden int, priorSection, priorTopic bool, seed int64) *SingleExtractor {
	rng := rand.New(rand.NewSource(seed))
	in := enc.Dim()
	if priorSection {
		in++
	}
	topicDim := 0
	var topicEmb *nn.Embedding
	if priorTopic {
		topicDim = hidden
		topicEmb = nn.NewEmbedding(name+".topicEmb", vocab, topicDim, rng)
		in += topicDim
	}
	return &SingleExtractor{
		ModelName:    name,
		Enc:          enc,
		LSTM:         nn.NewBiLSTM(name+".lstm", in, hidden, rng),
		Out:          nn.NewLinear(name+".out", 2*hidden, 3, rng),
		PriorSection: priorSection,
		PriorTopic:   priorTopic,
		TopicEmb:     topicEmb,
		Dropout:      0.2,
		rng:          rng,
	}
}

// Name implements wb.Model.
func (m *SingleExtractor) Name() string { return m.ModelName }

// Params implements nn.Layer.
func (m *SingleExtractor) Params() []*ag.Param {
	ps := nn.CollectParams(m.Enc, m.LSTM, m.Out)
	if m.TopicEmb != nil {
		ps = append(ps, m.TopicEmb.Params()...)
	}
	return ps
}

// Forward implements wb.Model.
func (m *SingleExtractor) Forward(t *ag.Tape, inst *wb.Instance, mode wb.Mode) *wb.Output {
	tok, _ := m.Enc.EncodeDoc(t, inst)
	if mode == wb.Train && m.Dropout > 0 {
		tok = t.Dropout(tok, m.Dropout, m.rng)
	}
	feats := tok
	if m.PriorSection {
		feats = t.ConcatCols(feats, goldSectionColumn(t, inst))
	}
	if m.PriorTopic {
		topicVec := t.MeanRows(m.TopicEmb.Forward(t, goldTopicIDs(inst)))
		bcast := t.MatMul(t.Const(tensor.Full(feats.Rows(), 1, 1)), topicVec)
		feats = t.ConcatCols(feats, bcast)
	}
	h := m.LSTM.Forward(t, feats)
	return &wb.Output{TokenH: h, TagLogits: m.Out.Forward(t, h)}
}

// goldSectionColumn returns the l×1 column of gold informative flags
// broadcast to token positions — the "+prior section" signal.
func goldSectionColumn(t *ag.Tape, inst *wb.Instance) *ag.Node {
	col := tensor.New(len(inst.IDs), 1)
	for i, s := range inst.SentOf {
		col.Set(i, 0, float64(inst.SentInfo[s]))
	}
	return t.Const(col)
}

// goldTopicIDs returns the topic token ids excluding BOS.
func goldTopicIDs(inst *wb.Instance) []int {
	return inst.TopicIn[1:]
}

// SingleGenerator is the *→[Bi-LSTM, LSTM] single-task topic generator.
type SingleGenerator struct {
	ModelName    string
	Enc          wb.DocEncoder
	LSTM         *nn.BiLSTM
	MemPr        *nn.Linear
	Dec          *nn.AttnDecoder
	PriorSection bool
	Dropout      float64
	TopicLen     int
	rng          *rand.Rand
}

// NewSingleGenerator builds a generator over enc with the given decoder
// vocabulary.
func NewSingleGenerator(name string, enc wb.DocEncoder, vocab, hidden int, priorSection bool, seed int64) *SingleGenerator {
	rng := rand.New(rand.NewSource(seed))
	in := enc.Dim()
	if priorSection {
		in++
	}
	return &SingleGenerator{
		ModelName:    name,
		Enc:          enc,
		LSTM:         nn.NewBiLSTM(name+".lstm", in, hidden, rng),
		MemPr:        nn.NewLinear(name+".mem", 2*hidden, hidden, rng),
		Dec:          nn.NewAttnDecoder(name+".dec", vocab, hidden, hidden, hidden, rng),
		PriorSection: priorSection,
		Dropout:      0.2,
		TopicLen:     4,
		rng:          rng,
	}
}

// Name implements wb.Model.
func (m *SingleGenerator) Name() string { return m.ModelName }

// Params implements nn.Layer.
func (m *SingleGenerator) Params() []*ag.Param {
	return nn.CollectParams(m.Enc, m.LSTM, m.MemPr, m.Dec)
}

// Forward implements wb.Model.
func (m *SingleGenerator) Forward(t *ag.Tape, inst *wb.Instance, mode wb.Mode) *wb.Output {
	_, sent := m.Enc.EncodeDoc(t, inst)
	if mode == wb.Train && m.Dropout > 0 {
		sent = t.Dropout(sent, m.Dropout, m.rng)
	}
	feats := sent
	if m.PriorSection {
		col := tensor.New(inst.NumSents(), 1)
		for s, info := range inst.SentInfo {
			col.Set(s, 0, float64(info))
		}
		feats = t.ConcatCols(feats, t.Const(col))
	}
	h := m.LSTM.Forward(t, feats)
	mem := m.MemPr.Forward(t, h)
	out := &wb.Output{SentH: h, Memory: mem, Dec: m.Dec}
	if mode.TeacherForced() {
		var states *ag.Node
		out.TopicLogits, states = m.Dec.ForwardStates(t, mem, inst.TopicIn)
		out.TopicStates = states
	} else {
		_, out.TopicStates = m.Dec.GreedyWithStates(t, mem, textproc.BosID, textproc.EosID, m.TopicLen)
	}
	return out
}
