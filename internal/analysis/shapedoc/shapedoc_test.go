package shapedoc_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/shapedoc"
)

func TestShapedoc(t *testing.T) {
	analysistest.Run(t, shapedoc.Analyzer, "./testdata/src/tensor")
}
