// Package tensor is a shapedoc fixture: its import path ends in "tensor",
// so exported kernels with matrix parameters must carry the
// shape-check-then-panic preamble.
package tensor

import "fmt"

// Matrix mirrors the real dense matrix type.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

func dstShapeCheck(dst *Matrix, rows, cols int, op string) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("tensor: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}

// GoodHelperCheck validates through the shared helper.
func GoodHelperCheck(dst, a *Matrix) {
	dstShapeCheck(dst, a.Rows, a.Cols, "GoodHelperCheck")
	for i, v := range a.Data {
		dst.Data[i] = v
	}
}

// GoodInlinePanic validates with an explicit guard.
func GoodInlinePanic(dst, a *Matrix) {
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("tensor: GoodInlinePanic shape mismatch")
	}
	for i, v := range a.Data {
		dst.Data[i] = v + v
	}
}

// GoodMethod checks shapes on a method receiver's argument.
func (m *Matrix) GoodMethod(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("tensor: GoodMethod shape mismatch")
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// BadInto writes through dst with no validation at all.
func BadInto(dst, a *Matrix) { // want "no shape-check-then-panic preamble"
	for i, v := range a.Data {
		dst.Data[i] = v * 2
	}
}

// BadVariadic skips validation of its variadic matrices.
func BadVariadic(dst *Matrix, ms ...*Matrix) { // want "no shape-check-then-panic preamble"
	for _, m := range ms {
		for i, v := range m.Data {
			dst.Data[i] += v
		}
	}
}

// SameShape is a predicate: reporting is its job, so it is exempt.
func SameShape(a, b *Matrix) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols
}

// scaleInto is unexported and out of scope.
func scaleInto(dst *Matrix, s float64) {
	for i := range dst.Data {
		dst.Data[i] *= s
	}
}

// NoMatrixArgs takes no matrix parameters and is out of scope.
func NoMatrixArgs(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

var _ = scaleInto
