// Package shapedoc enforces the kernel preamble convention of
// internal/tensor: every exported kernel that accepts a matrix argument
// validates shapes up front and panics with a message naming the operation
// (see dstShapeCheck in tensor/into.go). A kernel that skips the preamble
// fails later with an index-out-of-range somewhere inside a loop — or,
// worse, silently reads stale arena memory when a destination is the wrong
// shape, which the wbdebug NaN guards can only catch after the damage is
// done.
//
// The pass applies to packages named "tensor". An exported function or
// method there with at least one *Matrix parameter must either call a
// shape-check helper (a function whose name contains "ShapeCheck" /
// "shapeCheck") or contain an explicit panic. Predicates and validators —
// functions returning bool or error — are exempt: reporting IS their job.
package shapedoc

import (
	"go/ast"
	"go/types"

	"webbrief/internal/analysis"
)

// Analyzer is the shapedoc pass.
var Analyzer = &analysis.Analyzer{
	Name: "shapedoc",
	Doc:  "exported tensor kernels must shape-check their matrix arguments and panic early",
	Run:  run,
}

func run(pass *analysis.Pass) {
	if analysis.LastPathSegment(pass.Pkg.Path()) != "tensor" {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !hasMatrixParam(pass, fn) || isPredicate(fn) {
				continue
			}
			if !checksShapes(fn.Body) {
				pass.Reportf(fn.Pos(),
					"exported kernel %s takes *Matrix but has no shape-check-then-panic preamble (see tensor/into.go)",
					fn.Name.Name)
			}
		}
	}
}

// hasMatrixParam reports whether any parameter (not the receiver) is a
// pointer to a type named Matrix.
func hasMatrixParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ell, ok := t.(*types.Slice); ok { // variadic ...*Matrix
			t = ell.Elem()
		}
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Name() == "Matrix" {
			return true
		}
	}
	return false
}

// isPredicate reports whether fn only reports (returns bool or error)
// rather than computing into its arguments.
func isPredicate(fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil {
		return false
	}
	for _, field := range res.List {
		if id, ok := field.Type.(*ast.Ident); ok && (id.Name == "bool" || id.Name == "error") {
			return true
		}
	}
	return false
}

// checksShapes reports whether the body reaches a panic or a shape-check
// helper call on some path.
func checksShapes(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "panic" || isShapeCheckName(fun.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if isShapeCheckName(fun.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isShapeCheckName(name string) bool {
	for i := 0; i+len("hapeCheck") <= len(name); i++ {
		if name[i:i+len("hapeCheck")] == "hapeCheck" {
			return true
		}
	}
	return false
}
