package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package under analysis.
type Package struct {
	ImportPath string
	Imports    []string // direct imports, for dependency-ordered scheduling
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -export -json -deps`, then parses and
// type-checks every matched (non-dependency) package from source, importing
// dependencies — including the standard library — from the compiler export
// data the list command produced. Test files are not loaded: the contracts
// wbcheck enforces apply to shipped code, and tests deliberately break
// several of them (literal seeds, exact float comparison).
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Imports:    lp.Imports,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
