package analysis_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/floateq"
	"webbrief/internal/analysis/seedrand"
)

// TestIgnoreDirectiveEdgeCases drives the //wbcheck:ignore edge cases
// through real passes: a directive above a multi-line statement must cover
// the continuation lines, one directive may name several passes, and
// justification prose after `--` never counts as a pass name.
func TestIgnoreDirectiveEdgeCases(t *testing.T) {
	analysistest.RunAll(t, "./testdata/src/ignore", floateq.Analyzer, seedrand.Analyzer)
}
