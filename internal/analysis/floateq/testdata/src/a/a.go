// Package a is a floateq fixture: exact float comparisons, with the
// constant-zero and integer exemptions.
package a

// BadEqual compares computed floats exactly.
func BadEqual(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// BadNotEqual on float32 operands.
func BadNotEqual(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

// BadConstant compares against a non-zero constant, which is just as
// fragile after arithmetic.
func BadConstant(f1 float64) bool {
	return f1 == 100 // want "floating-point == comparison"
}

// GoodZeroSkip is the exact sparsity idiom: true zero is preserved by IEEE
// + and ×, so the comparison is reliable.
func GoodZeroSkip(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x == 0 {
			continue
		}
		n++
	}
	return n
}

// GoodZeroFloatLiteral also compares against exact zero.
func GoodZeroFloatLiteral(x float64) bool {
	return x != 0.0
}

// GoodTolerance is the sanctioned comparison.
func GoodTolerance(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// GoodInts are not floats.
func GoodInts(a, b int) bool {
	return a == b
}

// BadNarrowed: narrowing to float32 before comparing does not make the
// comparison exact — rounding at the conversion is still arithmetic.
func BadNarrowed(x float64) bool {
	return float32(x) == 1.5 // want "floating-point == comparison"
}

// BadWidened: a float32 widened to float64 and compared against a computed
// float64 is the dtype boundary the student/teacher cascade crosses; exact
// equality across it is exactly as fragile.
func BadWidened(s float32, t float64) bool {
	return float64(s) != t // want "floating-point != comparison"
}

// GoodZeroFloat32: the sparsity-skip exemption holds for float32 too —
// IEEE true zero is exact at every width.
func GoodZeroFloat32(xs []float32) int {
	n := 0
	for _, x := range xs {
		if x == 0 {
			continue
		}
		n++
	}
	return n
}
