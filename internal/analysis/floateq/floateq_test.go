package floateq_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, floateq.Analyzer, "./testdata/src/a")
}
