// Package floateq flags == and != between floating-point operands. After
// any arithmetic, exact float equality is at best fragile and at worst a
// scheduling-dependent branch: the data-parallel trainer only guarantees
// bit-identical results for a FIXED worker count, so code that branches on
// exact equality of computed values can diverge across configurations.
// Compare against a tolerance (math.Abs(a-b) <= eps) or restructure to
// integer counts.
//
// Two exemptions: comparisons where either side is a compile-time constant
// zero (the sparsity-skip idiom `if a == 0 { continue }` is exact — IEEE
// multiplication and addition by true zero never manufactures a near-zero),
// and test files, where determinism tests compare floats bit-for-bit on
// purpose.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"webbrief/internal/analysis"
)

// Analyzer is the floateq pass.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "== / != between floating-point operands (non-zero) is unreliable",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			if isConstZero(pass, be.X) || isConstZero(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use a tolerance or integer counts", be.Op)
			return true
		})
	}
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	return v.Kind() == constant.Float && constant.Sign(v) == 0
}
