// Package a is a seedrand fixture: global-source draws and hard-coded
// seeds in a library (non-main, non-hot) package.
package a

import (
	"math/rand"
	"time"
)

// Config carries an explicit seed, the sanctioned source of randomness.
type Config struct {
	Seed int64
}

// BadGlobalDraws consume the process-global source.
func BadGlobalDraws() int {
	n := rand.Intn(10)                 // want "global source"
	_ = rand.Float64()                 // want "global source"
	rand.Shuffle(3, func(i, j int) {}) // want "global source"
	return n
}

// BadLiteralSeed hard-codes the seed instead of taking it from a config.
func BadLiteralSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "constant 42"
}

// GoodConfigSeed derives its RNG from an explicit config seed.
func GoodConfigSeed(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

// GoodDerivedSeed mixes a config seed; the expression is non-constant.
func GoodDerivedSeed(cfg Config, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed + int64(epoch)*1001))
}

// GoodMethodDraws use an explicit RNG, which is always fine.
func GoodMethodDraws(rng *rand.Rand) int {
	return rng.Intn(10)
}

// GoodClock is allowed here: package a is not a hot-path package.
func GoodClock() time.Time {
	return time.Now()
}
