// Package fault is a seedrand fixture shaped like the fault-injection
// layer: a chaos schedule must draw every fault decision from an explicit
// seeded *rand.Rand, or identical seeds stop replaying identical faults.
package fault

import "math/rand"

// Config carries the schedule's seed — the only sanctioned entropy source.
type Config struct {
	Seed int64
	Rate float64
}

// Schedule is the deterministic fault source.
type Schedule struct {
	cfg Config
	rng *rand.Rand
}

// BadGlobalSchedule draws fault decisions from the process-global source:
// the schedule's outcomes then depend on every other rand consumer in the
// process, and replay breaks.
func BadGlobalSchedule(rate float64) bool {
	if rand.Float64() < rate { // want "global source"
		return true
	}
	return rand.Intn(4) == 0 // want "global source"
}

// BadLiteralSeedSchedule hard-codes the seed: two harnesses constructed in
// one process silently share the same fault sequence.
func BadLiteralSeedSchedule() *Schedule {
	return &Schedule{rng: rand.New(rand.NewSource(1))} // want "constant 1"
}

// NewSchedule derives its RNG from the config seed — the sanctioned shape;
// identical cfg.Seed replays identical fault schedules.
func NewSchedule(cfg Config) *Schedule {
	return &Schedule{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next draws from the schedule's own RNG, which is always fine.
func (s *Schedule) Next() bool {
	return s.rng.Float64() < s.cfg.Rate
}
