// Package ag is a seedrand fixture whose final import-path segment matches
// a hot-path package name, so wall-clock reads are forbidden.
package ag

import "time"

// BadClock reads the wall clock inside a (mock) hot path.
func BadClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// GoodThreadedTime receives timing from the caller instead.
func GoodThreadedTime(now time.Time) int64 {
	return now.UnixNano()
}
