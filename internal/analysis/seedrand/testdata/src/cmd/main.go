// Command main is a seedrand fixture: in package main a literal seed IS the
// run's configuration, so rand.New(rand.NewSource(<literal>)) is allowed;
// global-source draws are still not.
package main

import "math/rand"

func main() {
	rng := rand.New(rand.NewSource(17)) // literal seed OK in main
	_ = rng.Intn(3)
	_ = rand.Intn(3) // want "global source"
}
