// Package seedrand enforces the engine's randomness contract: every RNG is
// an explicit *rand.Rand constructed from a config seed, and hot training
// paths never consult the wall clock.
//
// Three things are flagged, all outside test files:
//
//   - calls to math/rand package-level functions (Intn, Float64, Shuffle,
//     Seed, ...) — these draw from the shared global source, whose state
//     depends on everything else in the process;
//   - rand.New(rand.NewSource(<constant literal>)) in library packages —
//     a hard-coded seed is not derived from any config, so two components
//     can silently share (or silently diverge in) their randomness; package
//     main is exempt because there the literal IS the run's configured seed;
//   - time.Now() in the numeric hot-path packages (ag, nn, wb, tensor,
//     distill) — wall-clock reads make reruns irreproducible.
package seedrand

import (
	"go/ast"
	"go/types"

	"webbrief/internal/analysis"
)

// Analyzer is the seedrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seedrand",
	Doc:  "RNGs must be built from explicit config seeds; no global source, no wall clock in hot paths",
	Run:  run,
}

// hotPackages are the final import-path segments of the numeric packages in
// which time.Now is forbidden.
var hotPackages = map[string]bool{
	"ag": true, "nn": true, "wb": true, "tensor": true, "distill": true,
}

func run(pass *analysis.Pass) {
	isMain := pass.Pkg.Name() == "main"
	hot := hotPackages[analysis.LastPathSegment(pass.Pkg.Path())]
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Package-level functions only: methods on an explicit
			// *rand.Rand are the sanctioned API.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				checkRand(pass, call, fn.Name(), isMain)
			case "time":
				if hot && fn.Name() == "Now" {
					pass.Reportf(call.Pos(),
						"time.Now in hot-path package %s makes runs irreproducible; thread timing through the caller",
						pass.Pkg.Path())
				}
			}
			return true
		})
	}
}

// constructors are the math/rand package-level names that do NOT draw from
// the global source.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func checkRand(pass *analysis.Pass, call *ast.CallExpr, name string, isMain bool) {
	if !constructors[name] {
		pass.Reportf(call.Pos(),
			"math/rand.%s uses the process-global source; construct rand.New(rand.NewSource(seed)) from a config seed",
			name)
		return
	}
	if name != "New" || isMain || len(call.Args) != 1 {
		return
	}
	// rand.New(rand.NewSource(<const literal>)): the seed is hard-coded
	// rather than derived from a config.
	src, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	srcFn := pass.CalleeFunc(src)
	if srcFn == nil || srcFn.Pkg() == nil || srcFn.Pkg().Path() != "math/rand" || srcFn.Name() != "NewSource" {
		return
	}
	if len(src.Args) == 1 {
		if tv, ok := pass.Info.Types[src.Args[0]]; ok && tv.Value != nil {
			pass.Reportf(call.Pos(),
				"rand.New seeded with constant %s; derive the seed from an explicit config (e.g. cfg.Seed)",
				tv.Value)
		}
	}
}
