package seedrand_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/seedrand"
)

func TestSeedrandLibrary(t *testing.T) {
	analysistest.Run(t, seedrand.Analyzer, "./testdata/src/a")
}

func TestSeedrandHotPath(t *testing.T) {
	analysistest.Run(t, seedrand.Analyzer, "./testdata/src/ag")
}

func TestSeedrandMainPackage(t *testing.T) {
	analysistest.Run(t, seedrand.Analyzer, "./testdata/src/cmd")
}

func TestSeedrandFaultSchedule(t *testing.T) {
	analysistest.Run(t, seedrand.Analyzer, "./testdata/src/fault")
}
