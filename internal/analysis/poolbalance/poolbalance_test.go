package poolbalance_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/poolbalance"
)

func TestPoolbalance(t *testing.T) {
	analysistest.Run(t, poolbalance.Analyzer, "./testdata/src/a")
}
