// Package poolbalance defines a wbcheck pass generalizing tapelife beyond
// tapes: any pooled checkout — a direct sync.Pool.Get, or a call to a
// module-level Get*/get* function that has a matching Put*/put* sibling in
// its package (GetScratch/PutScratch, getEncodeBuf/putEncodeBuf) — must be
// returned on every path out of the acquiring function. Acceptable shapes,
// in order of preference: a deferred Put (directly or inside a deferred
// func literal), handing the resource off by returning it to the caller
// (the wrapper-constructor shape: `return pool.Get().(*T)`), or a plain Put
// on every return path. Everything else leaks warm scratch out of the pool
// and regrows it per request, which is precisely the allocation regression
// the PR-4 fast path exists to prevent.
//
// ag.GetTape is excluded: tapelife owns tape lifecycle with stricter rules
// (deferred Put required, Reset policing).
package poolbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"webbrief/internal/analysis"
)

// Analyzer implements the poolbalance pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolbalance",
	Doc:  "sync.Pool.Get / Get-Put pair checkouts must be returned on every path (defer the Put, hand the resource off, or Put before each return)",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkScope(pass, fn.Body)
			}
			return true
		})
	}
}

// checkout is one pooled acquisition in the scope under check.
type checkout struct {
	call   *ast.CallExpr
	pos    token.Pos
	desc   string       // printable source of the resource, e.g. "GetScratch" or "bufPool.Get"
	putKey string       // key a put call must produce to balance this checkout
	varObj types.Object // variable the result was assigned to, if a simple assignment
}

type putCall struct {
	pos      token.Pos
	key      string
	deferred bool
}

// checkScope analyzes one function scope (never descending into nested
// FuncLits — each gets its own checkScope from run).
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var (
		checkouts []checkout
		puts      []putCall
		returns   []*ast.ReturnStmt
	)
	// assignedTo lets the CallExpr visit below attach the destination
	// variable of `v := Get()` / `v := Get().(*T)` to the checkout.
	assignedTo := map[*ast.CallExpr]types.Object{}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			// Deferred puts balance everything; a deferred func literal is
			// scanned for puts only (it runs in this scope's epilogue).
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if key, isPut := putKeyOf(pass, call); isPut {
							puts = append(puts, putCall{call.Pos(), key, true})
						}
					}
					return true
				})
				return false
			}
			if key, isPut := putKeyOf(pass, x.Call); isPut {
				puts = append(puts, putCall{x.Call.Pos(), key, true})
				return false
			}
			return true
		case *ast.AssignStmt:
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if call, ok := unwrapToCall(x.Rhs[0]); ok {
					if id, ok := x.Lhs[0].(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							assignedTo[call] = obj
						} else if obj := pass.Info.Uses[id]; obj != nil {
							assignedTo[call] = obj
						}
					}
				}
			}
			return true
		case *ast.ReturnStmt:
			returns = append(returns, x)
			return true
		case *ast.CallExpr:
			if key, isPut := putKeyOf(pass, x); isPut {
				puts = append(puts, putCall{x.Pos(), key, false})
				return true
			}
			if desc, key, isGet := checkoutKeyOf(pass, x); isGet {
				checkouts = append(checkouts, checkout{
					call:   x,
					pos:    x.Pos(),
					desc:   desc,
					putKey: key,
					varObj: assignedTo[x],
				})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, visit)

	if len(checkouts) == 0 {
		return
	}

	// Exits after a position: every later return, plus falling off the end
	// of the body unless its last statement is a return.
	fallOff := token.NoPos
	if n := len(body.List); n == 0 {
		fallOff = body.End()
	} else if _, isRet := body.List[n-1].(*ast.ReturnStmt); !isRet {
		fallOff = body.End()
	}

	for _, co := range checkouts {
		if handsOff(pass, returns, co) {
			continue
		}
		if hasDeferredPut(puts, co.putKey) {
			continue
		}
		if !hasAnyPut(puts, co.putKey) {
			pass.Reportf(co.pos, "%s checkout is never matched by a Put in this scope; defer the Put right after the checkout, or return the resource to the caller", co.desc)
			continue
		}
		for _, ret := range returns {
			if ret.Pos() > co.pos && !putBetween(puts, co.putKey, co.pos, ret.Pos()) {
				pass.Reportf(co.pos, "%s checkout is missing a Put on the return path at line %d; defer the Put instead",
					co.desc, pass.Fset.Position(ret.Pos()).Line)
			}
		}
		if fallOff.IsValid() && !putBetween(puts, co.putKey, co.pos, fallOff) {
			pass.Reportf(co.pos, "%s checkout is missing a Put on the fall-through path at the end of the function; defer the Put instead", co.desc)
		}
	}
}

// handsOff reports whether some return statement hands the checked-out
// resource to the caller: a result that is the checkout call itself (through
// parens and type assertions) or the variable it was assigned to.
func handsOff(pass *analysis.Pass, returns []*ast.ReturnStmt, co checkout) bool {
	for _, ret := range returns {
		for _, res := range ret.Results {
			if call, ok := unwrapToCall(res); ok && call == co.call {
				return true
			}
			if co.varObj != nil {
				if id, ok := unwrapToIdent(res); ok && pass.Info.Uses[id] == co.varObj {
					return true
				}
			}
		}
	}
	return false
}

func hasDeferredPut(puts []putCall, key string) bool {
	for _, p := range puts {
		if p.deferred && p.key == key {
			return true
		}
	}
	return false
}

func hasAnyPut(puts []putCall, key string) bool {
	for _, p := range puts {
		if p.key == key {
			return true
		}
	}
	return false
}

func putBetween(puts []putCall, key string, after, before token.Pos) bool {
	for _, p := range puts {
		if !p.deferred && p.key == key && after < p.pos && p.pos < before {
			return true
		}
	}
	return false
}

// checkoutKeyOf decides whether call acquires a pooled resource, returning
// a printable description and the key its balancing put must carry.
func checkoutKeyOf(pass *analysis.Pass, call *ast.CallExpr) (desc, key string, ok bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", "", false
	}
	// Direct sync.Pool.Get: keyed by the pool expression's terminal object,
	// so puts on a different pool in the same scope don't balance it.
	if fn.Name() == "Get" && fn.Pkg().Path() == "sync" && recvIsPool(fn) {
		if obj, name := poolReceiver(pass, call); obj != nil {
			return name + ".Get", poolKey(obj), true
		}
		return "", "", false
	}
	if put := pairPut(fn); put != nil {
		return fn.Name(), funcKey(put), true
	}
	return "", "", false
}

// putKeyOf mirrors checkoutKeyOf for the releasing side.
func putKeyOf(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if fn.Name() == "Put" && fn.Pkg().Path() == "sync" && recvIsPool(fn) {
		if obj, _ := poolReceiver(pass, call); obj != nil {
			return poolKey(obj), true
		}
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && inModule(fn.Pkg().Path()) {
		name := fn.Name()
		if strings.HasPrefix(name, "Put") || strings.HasPrefix(name, "put") {
			return funcKey(fn), true
		}
	}
	return "", false
}

// pairPut resolves the Put*/put* sibling of a module-level Get*/get*
// function, or nil when the call is not a pooled checkout by convention.
// The module restriction keeps os.Getenv and friends out; ag.GetTape is
// tapelife's jurisdiction.
func pairPut(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return nil
	}
	pkg := fn.Pkg()
	if pkg == nil || !inModule(pkg.Path()) {
		return nil
	}
	if pkg.Path() == "webbrief/internal/ag" && fn.Name() == "GetTape" {
		return nil
	}
	var putName string
	switch name := fn.Name(); {
	case strings.HasPrefix(name, "Get"):
		putName = "Put" + name[len("Get"):]
	case strings.HasPrefix(name, "get"):
		putName = "put" + name[len("get"):]
	default:
		return nil
	}
	put, _ := pkg.Scope().Lookup(putName).(*types.Func)
	return put
}

func inModule(path string) bool {
	return path == "webbrief" || strings.HasPrefix(path, "webbrief/")
}

func funcKey(fn *types.Func) string {
	return "func " + fn.Pkg().Path() + "." + fn.Name()
}

func poolKey(obj types.Object) string {
	key := "pool " + obj.Name()
	if obj.Pkg() != nil {
		key = "pool " + obj.Pkg().Path() + "." + obj.Name()
	}
	return key
}

// poolReceiver resolves the pool expression of pool.Get()/pool.Put(x) to
// its terminal object and printable name.
func poolReceiver(pass *analysis.Pass, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return pass.Info.Uses[x], x.Name
	case *ast.SelectorExpr:
		return pass.Info.Uses[x.Sel], types.ExprString(x)
	}
	return nil, ""
}

func recvIsPool(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return analysis.IsNamed(sig.Recv().Type(), "sync", "Pool")
}

// unwrapToCall strips parens and type assertions: `(pool.Get()).(*T)` is
// still the Get call.
func unwrapToCall(expr ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.TypeAssertExpr:
			expr = x.X
		case *ast.CallExpr:
			return x, true
		default:
			return nil, false
		}
	}
}

func unwrapToIdent(expr ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.TypeAssertExpr:
			expr = x.X
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}
