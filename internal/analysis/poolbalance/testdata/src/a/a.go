// Package a is the poolbalance fixture: balanced and unbalanced pooled
// checkouts, both through a Get/Put pair and against sync.Pool directly.
package a

import "sync"

type buf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return new(buf) }}

// GetBuf hands a pooled buffer to the caller: the checkout escapes by
// design (the handoff shape), so the balance obligation moves to callers.
func GetBuf() *buf { return bufPool.Get().(*buf) }

// PutBuf recycles a buffer.
func PutBuf(b *buf) {
	b.b = b.b[:0]
	bufPool.Put(b)
}

// GoodDeferred is the preferred shape.
func GoodDeferred() int {
	b := GetBuf()
	defer PutBuf(b)
	return len(b.b)
}

// GoodDeferredClosure puts inside a deferred func literal.
func GoodDeferredClosure() int {
	b := GetBuf()
	defer func() { PutBuf(b) }()
	return len(b.b)
}

// GoodLinear puts before the only return.
func GoodLinear() int {
	b := GetBuf()
	n := len(b.b)
	PutBuf(b)
	return n
}

// GoodHandoffVar returns the checked-out resource through a variable.
func GoodHandoffVar() *buf {
	b := GetBuf()
	b.b = b.b[:0]
	return b
}

// GoodRawHandoff returns the raw pool checkout through a type assertion.
func GoodRawHandoff() *buf {
	return bufPool.Get().(*buf)
}

// BadNoPut leaks the buffer out of the pool.
func BadNoPut() int {
	b := GetBuf() // want "never matched by a Put"
	return len(b.b)
}

// BadEarlyReturn puts on one path but not the early one.
func BadEarlyReturn(flag bool) int {
	b := GetBuf() // want "missing a Put on the return path"
	if flag {
		return 0
	}
	n := len(b.b)
	PutBuf(b)
	return n
}

// BadFallthrough balances the first checkout but forgets the second on the
// implicit final exit.
func BadFallthrough(sink *[]byte) {
	old := GetBuf()
	PutBuf(old)
	b := GetBuf() // want "missing a Put on the fall-through path"
	*sink = append(*sink, b.b...)
}

// BadRawPool leaks a direct sync.Pool checkout.
func BadRawPool() {
	b := bufPool.Get().(*buf) // want "never matched by a Put"
	b.b = b.b[:0]
}
