// Package blockfacts computes the call-graph summaries the concurrency
// passes consume. It reports nothing itself: for every function declared in
// the package it decides, bottom-up, whether the function can block
// (channel operations, select without default, network/process waits,
// sync.WaitGroup/Cond Wait — transitively through calls) and whether it is
// tied to a shutdown path (selects or receives on a done-ish channel or
// ctx.Done(), signals completion on one, ranges over a channel, or defers
// WaitGroup.Done — again transitively), then exports the answers as
// analysis facts. Because the driver analyzes packages in dependency order,
// a summary exported by internal/tensor is visible when internal/ag is
// analyzed, and so on up the import graph: that is how "MakeBrief can block
// on a WaitGroup three packages down" becomes a checkable statement in
// lockhold and goshutdown.
//
// The summaries are deliberately conservative in both directions: indirect
// calls through function values and interface methods are assumed
// non-blocking (so lockhold stays quiet rather than noisy), and only a
// fixed table of stdlib primitives seeds the blocking relation.
package blockfacts

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"webbrief/internal/analysis"
)

// Blocks is the fact exported for a function whose body can block on
// channels, network, process waits, or sync Wait primitives. Reason is a
// human-readable chain such as "calls parallelRows (sync.WaitGroup.Wait)".
type Blocks struct{ Reason string }

// AFact marks Blocks as an analysis fact.
func (*Blocks) AFact() {}

// ShutdownAware is the fact exported for a function containing a shutdown
// tie: a receive/select on a done-ish channel or ctx.Done(), a completion
// send on one, a range over a channel, or a deferred WaitGroup.Done. Via
// says which.
type ShutdownAware struct{ Via string }

// AFact marks ShutdownAware as an analysis fact.
func (*ShutdownAware) AFact() {}

// Analyzer computes and exports the summaries. It reports no diagnostics;
// passes list it in Requires to read its facts.
var Analyzer = &analysis.Analyzer{
	Name: "blockfacts",
	Doc:  "bottom-up blocking/shutdown call-graph summaries exported as facts (reports nothing itself)",
	Run:  run,
}

// summary is the in-progress answer for one function; empty string = no.
type summary struct {
	block    string
	shutdown string
}

func run(pass *analysis.Pass) {
	// Collect every declared function body, in file order so the fixed
	// point below is deterministic.
	type decl struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var decls []decl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			decls = append(decls, decl{fn, fd.Body})
		}
	}

	// Fixed point over intra-package calls: a function is blocking or
	// shutdown-aware if its body says so directly, via an imported fact, or
	// via the current summary of a same-package callee. Both properties
	// only ever flip off->on, so this terminates.
	local := map[*types.Func]summary{}
	look := func(fn *types.Func) summary {
		if s, ok := local[fn]; ok {
			return s
		}
		return factSummary(pass, fn)
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			s := scanBody(pass, d.body, look)
			if cur := local[d.fn]; cur != s {
				local[d.fn] = s
				changed = true
			}
		}
	}

	for _, d := range decls {
		s := local[d.fn]
		if s.block != "" {
			pass.ExportObjectFact(d.fn, &Blocks{Reason: s.block})
		}
		if s.shutdown != "" {
			pass.ExportObjectFact(d.fn, &ShutdownAware{Via: s.shutdown})
		}
	}
}

// factSummary reads previously exported facts for fn — either from a
// dependency package or from an earlier iteration over this one.
func factSummary(pass *analysis.Pass, fn *types.Func) summary {
	var s summary
	var b Blocks
	if pass.ImportObjectFact(fn, &b) {
		s.block = b.Reason
	}
	var sd ShutdownAware
	if pass.ImportObjectFact(fn, &sd) {
		s.shutdown = sd.Via
	}
	return s
}

// CallBlocks reports whether call can block, with a reason: either the
// callee is a known-blocking stdlib primitive or it carries a Blocks fact.
// Indirect calls resolve to no *types.Func and return false.
func CallBlocks(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	return callBlocks(pass, call, func(fn *types.Func) summary {
		return factSummary(pass, fn)
	})
}

// FuncShutdown reports whether fn carries a ShutdownAware fact.
func FuncShutdown(pass *analysis.Pass, fn *types.Func) (string, bool) {
	s := factSummary(pass, fn)
	return s.shutdown, s.shutdown != ""
}

// BodyShutdown reports whether a function body — typically a go'd FuncLit,
// which has no *types.Func to carry a fact — contains a shutdown tie.
func BodyShutdown(pass *analysis.Pass, body *ast.BlockStmt) (string, bool) {
	s := scanBody(pass, body, func(fn *types.Func) summary {
		return factSummary(pass, fn)
	})
	return s.shutdown, s.shutdown != ""
}

// stdBlockers seeds the blocking relation: {package, receiver (or "" for
// package-level), name} -> reason. Interface methods key on the interface's
// name. sync.Mutex.Lock is deliberately absent — lockhold's contract is
// about channels, network and Wait, not about nested mutexes.
var stdBlockers = map[[3]string]string{
	{"sync", "WaitGroup", "Wait"}:               "sync.WaitGroup.Wait",
	{"sync", "Cond", "Wait"}:                    "sync.Cond.Wait",
	{"time", "", "Sleep"}:                       "time.Sleep",
	{"io", "", "ReadAll"}:                       "io.ReadAll",
	{"io", "", "Copy"}:                          "io.Copy",
	{"io", "", "CopyN"}:                         "io.CopyN",
	{"io", "", "ReadFull"}:                      "io.ReadFull",
	{"net", "", "Dial"}:                         "net.Dial",
	{"net", "", "DialTimeout"}:                  "net.DialTimeout",
	{"net", "", "Listen"}:                       "net.Listen",
	{"net", "Conn", "Read"}:                     "net.Conn.Read",
	{"net", "Conn", "Write"}:                    "net.Conn.Write",
	{"net/http", "", "Get"}:                     "http.Get",
	{"net/http", "", "Head"}:                    "http.Head",
	{"net/http", "", "Post"}:                    "http.Post",
	{"net/http", "", "PostForm"}:                "http.PostForm",
	{"net/http", "Client", "Do"}:                "http.Client.Do",
	{"net/http", "Client", "Get"}:               "http.Client.Get",
	{"net/http", "Client", "Head"}:              "http.Client.Head",
	{"net/http", "Client", "Post"}:              "http.Client.Post",
	{"net/http", "Client", "PostForm"}:          "http.Client.PostForm",
	{"net/http", "Server", "ListenAndServe"}:    "http.Server.ListenAndServe",
	{"net/http", "Server", "ListenAndServeTLS"}: "http.Server.ListenAndServeTLS",
	{"net/http", "Server", "Serve"}:             "http.Server.Serve",
	{"net/http", "Server", "Shutdown"}:          "http.Server.Shutdown",
	{"os/exec", "Cmd", "Run"}:                   "exec.Cmd.Run",
	{"os/exec", "Cmd", "Wait"}:                  "exec.Cmd.Wait",
	{"os/exec", "Cmd", "Output"}:                "exec.Cmd.Output",
	{"os/exec", "Cmd", "CombinedOutput"}:        "exec.Cmd.CombinedOutput",
}

func callBlocks(pass *analysis.Pass, call *ast.CallExpr, look func(*types.Func) summary) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	key := [3]string{fn.Pkg().Path(), recvTypeName(fn), fn.Name()}
	if reason, ok := stdBlockers[key]; ok {
		return reason, true
	}
	if s := look(fn); s.block != "" {
		return "calls " + fn.Name() + " (" + rootCause(s.block) + ")", true
	}
	return "", false
}

// rootCause unwraps nested "calls f (...)" chains to the primitive reason,
// so a summary that crossed four packages reads "calls MakeBrief
// (sync.WaitGroup.Wait)" instead of reciting the whole call path.
func rootCause(reason string) string {
	for strings.HasPrefix(reason, "calls ") {
		i := strings.IndexByte(reason, '(')
		if i < 0 || !strings.HasSuffix(reason, ")") {
			break
		}
		reason = reason[i+1 : len(reason)-1]
	}
	return reason
}

// recvTypeName is the named receiver type of a method ("" for package-level
// functions), pointers stripped, interfaces included.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed && named.Obj() != nil {
		return named.Obj().Name()
	}
	return ""
}

// scanBody walks one function body (never descending into FuncLits or go
// statements — their bodies run on other goroutines) and summarizes it.
func scanBody(pass *analysis.Pass, body *ast.BlockStmt, look func(*types.Func) summary) summary {
	var s summary
	note := func(dst *string, v string) {
		if *dst == "" {
			*dst = v
		}
	}
	var inspect func(n ast.Node) bool
	rec := func(n ast.Node) { ast.Inspect(n, inspect) }
	inspect = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				note(&s.block, "select")
			}
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				// Comm clauses only contribute shutdown ties here — with a
				// default present the channel ops themselves don't block.
				if cc.Comm != nil {
					if via, ok := commShutdown(pass, cc.Comm); ok {
						note(&s.shutdown, via)
					}
				}
				for _, st := range cc.Body {
					rec(st)
				}
			}
			return false
		case *ast.SendStmt:
			note(&s.block, "channel send")
			if name, ok := doneish(x.Chan); ok {
				note(&s.shutdown, "signals completion on "+name)
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				note(&s.block, "channel receive")
				if name, ok := doneish(x.X); ok {
					note(&s.shutdown, "receives from "+name)
				}
			}
			return true
		case *ast.RangeStmt:
			if isChanExpr(pass, x.X) {
				note(&s.block, "range over channel")
				note(&s.shutdown, "ranges over a channel (exits when it closes)")
			}
			return true
		case *ast.DeferStmt:
			if isWaitGroupDone(pass, x.Call) {
				note(&s.shutdown, "defers WaitGroup.Done")
			}
			return true
		case *ast.CallExpr:
			if reason, ok := callBlocks(pass, x, look); ok {
				note(&s.block, reason)
			}
			if fn := pass.CalleeFunc(x); fn != nil {
				if sd := look(fn); sd.shutdown != "" {
					note(&s.shutdown, "calls "+fn.Name()+" ("+rootCause(sd.shutdown)+")")
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, inspect)
	return s
}

// commShutdown inspects one select comm clause for a done-ish receive or
// completion send.
func commShutdown(pass *analysis.Pass, comm ast.Stmt) (string, bool) {
	switch c := comm.(type) {
	case *ast.SendStmt:
		if name, ok := doneish(c.Chan); ok {
			return "signals completion on " + name, true
		}
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			if name, ok := doneish(u.X); ok {
				return "receives from " + name, true
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range c.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				if name, ok := doneish(u.X); ok {
					return "receives from " + name, true
				}
			}
		}
	}
	return "", false
}

// doneish decides whether a channel expression names a shutdown signal:
// ctx.Done()-style calls, or an identifier/field whose name suggests
// done/stop/quit/shutdown/close/exit/cancel.
func doneish(expr ast.Expr) (string, bool) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && doneishName(sel.Sel.Name) {
			return sel.Sel.Name + "()", true
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && doneishName(id.Name) {
			return id.Name + "()", true
		}
	case *ast.Ident:
		if doneishName(x.Name) {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		if doneishName(x.Sel.Name) {
			return x.Sel.Name, true
		}
	}
	return "", false
}

// "clos" also catches closed/closing/closeCh spellings.
var doneishWords = []string{"done", "stop", "quit", "shutdown", "clos", "exit", "cancel"}

func doneishName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range doneishWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// isChanExpr reports whether expr has channel type.
func isChanExpr(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil &&
		fn.Pkg().Path() == "sync" && recvTypeName(fn) == "WaitGroup"
}
