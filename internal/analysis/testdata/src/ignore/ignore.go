// Package ignore exercises //wbcheck:ignore directive edge cases: coverage
// of multi-line statements, several pass names in one directive, and the
// `--` justification separator.
package ignore

import "math/rand"

// MultiLine: the directive sits above a statement spanning two lines; the
// violation on the continuation line must be suppressed too.
func MultiLine(a, b, c, d float64) bool {
	//wbcheck:ignore floateq -- fixture: exact equality is the point here
	return a == b ||
		c == d
}

// MultiPass: one directive naming two passes suppresses a line that
// violates both.
func MultiPass(x float64) bool {
	//wbcheck:ignore seedrand floateq -- fixture: both violations are deliberate
	return rand.Float64() == x
}

// WrongName: a directive naming a different pass suppresses nothing.
func WrongName(a, b float64) bool {
	//wbcheck:ignore detmap -- fixture: names only detmap
	return a == b // want "floating-point"
}

// JustificationNotNames: prose after `--` is never parsed as a pass name,
// even when it mentions one.
func JustificationNotNames(a, b float64) bool {
	//wbcheck:ignore seedrand -- fixture: floateq must NOT be suppressed by this mention
	return a == b // want "floating-point"
}

// Lookalike: "wbcheck:ignored" is not a directive.
func Lookalike(a, b float64) bool {
	//wbcheck:ignoredetmap is not a directive and neither is this sentence
	return a == b // want "floating-point"
}
