package detmap_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, detmap.Analyzer, "./testdata/src/a")
}
