// Package a is a detmap fixture: known-good and known-bad map iteration
// over model state.
package a

import (
	"webbrief/internal/ag"
	"webbrief/internal/tensor"
)

// BadShardIteration merges gradient shards in map order.
func BadShardIteration(m map[*ag.Param]*tensor.Matrix, into *tensor.Matrix) {
	for _, g := range m { // want "range over map"
		into.AddInPlace(g)
	}
}

// BadKeyOnly iterates parameter keys in map order.
func BadKeyOnly(m map[*ag.Param]int) int {
	total := 0
	for range m { // want "range over map"
		total++
	}
	return total
}

// BadNested flags maps holding slices of parameters too.
func BadNested(groups map[string][]*ag.Param) {
	for _, ps := range groups { // want "range over map"
		for _, p := range ps {
			p.ZeroGrad()
		}
	}
}

// GoodSliceOrder is the sanctioned pattern: an explicit slice fixes the
// traversal order and the map is only used for lookup.
func GoodSliceOrder(order []*ag.Param, m map[*ag.Param]*tensor.Matrix, into *tensor.Matrix) {
	for _, p := range order {
		if g, ok := m[p]; ok {
			into.AddInPlace(g)
		}
	}
}

// GoodPlainMap iterates a map of plain values, which detmap does not police.
func GoodPlainMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Suppressed shows the escape hatch for a reviewed, order-insensitive loop.
func Suppressed(m map[*ag.Param]*tensor.Matrix) {
	//wbcheck:ignore detmap
	for _, g := range m {
		g.Zero()
	}
}
