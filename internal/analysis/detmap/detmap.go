// Package detmap flags `range` statements over maps that hold model state —
// *ag.Param keys or values, or *tensor.Matrix shards keyed by parameters.
// Go randomises map iteration order, so any such loop whose body has
// side effects makes training output depend on scheduling, which breaks the
// engine's bit-for-bit reproducibility guarantee. State iterated for
// gradient merging, serialization or optimisation must follow an explicit
// slice order (see GradSink.MergeInto). Test files are exempt.
package detmap

import (
	"go/ast"
	"go/types"

	"webbrief/internal/analysis"
)

// Analyzer is the detmap pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "range over maps of *ag.Param / model state is nondeterministic",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			m, ok := tv.Type.Underlying().(*types.Map)
			if !ok {
				return true
			}
			if isModelState(m.Key()) || isModelState(m.Elem()) {
				pass.Reportf(rs.Pos(),
					"range over map[%s]%s iterates model state in random order; iterate an explicit slice instead",
					m.Key(), m.Elem())
			}
			return true
		})
	}
}

// isModelState reports whether t is (a pointer/slice chain ending in) one of
// the engine's trainable-state types.
func isModelState(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	return analysis.IsNamed(t, "webbrief/internal/ag", "Param") ||
		analysis.IsNamed(t, "webbrief/internal/tensor", "Matrix")
}
