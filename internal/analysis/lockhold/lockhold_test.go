package lockhold_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "./testdata/src/a")
}

// TestLockholdCrossPackageFact loads a two-package fixture: dep exports a
// blocking function, and the Blocks fact blockfacts attaches to it must
// travel through the driver's fact store to flag a lock held across
// dep.Flush in the importing package.
func TestLockholdCrossPackageFact(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "./testdata/src/factdep/...")
}
