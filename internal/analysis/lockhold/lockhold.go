// Package lockhold defines a wbcheck pass forbidding sync.Mutex/RWMutex
// locks held across calls that can block on channels, network, or Wait
// primitives — the convoy shape that turned PR 3's serial-mutex baseline
// into a bottleneck, and the classic ingredient of a drain deadlock (lock
// held, channel send blocks, the receiver needs the lock). Whether a call
// can block comes from the blockfacts summaries, so the answer is
// transitive and crosses package boundaries: holding a lock over
// wb.MakeBrief is flagged because, three packages down, the matmul kernels
// fork-join on a WaitGroup.
//
// The checker tracks held locks per statement list with per-branch copies,
// so a lock taken and released inside one arm of an if never taints the
// other arm; deferred Unlock marks the lock held to the end of the
// function. Indirect calls (function values, interface methods) are assumed
// non-blocking — the pass prefers silence to noise.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"webbrief/internal/analysis"
	"webbrief/internal/analysis/blockfacts"
)

// Analyzer implements the lockhold pass.
var Analyzer = &analysis.Analyzer{
	Name:     "lockhold",
	Doc:      "no sync.Mutex/RWMutex held across a call whose transitive summary says it can block on channels, network, or Wait",
	Requires: []*analysis.Analyzer{blockfacts.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.stmts(fn.Body.List, &heldSet{})
				}
			case *ast.FuncLit:
				c.stmts(fn.Body.List, &heldSet{})
				return false // stmts re-visits nested FuncLits itself
			}
			return true
		})
	}
}

// heldSet is the ordered set of locks held at a program point.
type heldSet struct {
	locks []heldLock
}

type heldLock struct {
	obj  types.Object // terminal var/field of the mutex expression
	name string       // printable form, e.g. "s.mu"
}

func (h *heldSet) clone() *heldSet {
	return &heldSet{locks: append([]heldLock(nil), h.locks...)}
}

func (h *heldSet) add(obj types.Object, name string) {
	for _, l := range h.locks {
		if l.obj == obj {
			return
		}
	}
	h.locks = append(h.locks, heldLock{obj, name})
}

func (h *heldSet) remove(obj types.Object) {
	for i, l := range h.locks {
		if l.obj == obj {
			h.locks = append(h.locks[:i], h.locks[i+1:]...)
			return
		}
	}
}

// innermost is the most recently acquired lock, named in diagnostics.
func (h *heldSet) innermost() (heldLock, bool) {
	if len(h.locks) == 0 {
		return heldLock{}, false
	}
	return h.locks[len(h.locks)-1], true
}

type checker struct {
	pass *analysis.Pass
}

// stmts walks one statement list, threading the held-lock state through in
// order. Compound statements hand copies of the state to their branches:
// lock transitions inside a branch are real within it but do not leak out,
// trading false negatives for zero false positives on branch-dependent
// locking.
func (c *checker) stmts(list []ast.Stmt, held *heldSet) {
	for _, st := range list {
		c.stmt(st, held)
	}
}

func (c *checker) stmt(st ast.Stmt, held *heldSet) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		c.stmts(x.List, held)
	case *ast.LabeledStmt:
		c.stmt(x.Stmt, held)
	case *ast.IfStmt:
		if x.Init != nil {
			c.scan(x.Init, held)
		}
		c.scan(x.Cond, held)
		c.stmts(x.Body.List, held.clone())
		if x.Else != nil {
			c.stmt(x.Else, held.clone())
		}
	case *ast.ForStmt:
		if x.Init != nil {
			c.scan(x.Init, held)
		}
		if x.Cond != nil {
			c.scan(x.Cond, held)
		}
		body := held.clone()
		c.stmts(x.Body.List, body)
		if x.Post != nil {
			c.scan(x.Post, body)
		}
	case *ast.RangeStmt:
		c.scan(x.X, held)
		if isChanExpr(c.pass, x.X) {
			c.report(x.Pos(), held, "range over a channel")
		}
		c.stmts(x.Body.List, held.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.scan(x.Init, held)
		}
		if x.Tag != nil {
			c.scan(x.Tag, held)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.scan(x.Init, held)
		}
		c.scan(x.Assign, held)
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			c.report(x.Pos(), held, "select without default")
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.stmts(cc.Body, held.clone())
			}
		}
	case *ast.GoStmt:
		// The spawned body runs without this goroutine's locks; argument
		// evaluation is synchronous but never lock-transitioning in
		// practice.
	case *ast.DeferStmt:
		if _, _, ok := c.lockTransition(x.Call); ok && !isLockCall(c.pass, x.Call) {
			// Deferred Unlock: the lock stays held for the rest of the
			// function, which is exactly what the threaded state says — so
			// nothing to do. (A deferred Lock would be bizarre; ignored.)
			return
		}
		// A deferred call that can itself block (defer wg.Wait() after
		// defer mu.Unlock() runs BEFORE the unlock) still executes with
		// every currently-deferred lock held.
		c.scan(x.Call, held)
	default:
		c.scan(st, held)
	}
}

// scan walks one simple statement or expression in source order, applying
// lock transitions and reporting blocking events that occur while a lock is
// held. FuncLits and go statements are skipped: their bodies run elsewhere.
func (c *checker) scan(n ast.Node, held *heldSet) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			c.report(x.Arrow, held, "channel send")
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.report(x.OpPos, held, "channel receive")
			}
			return true
		case *ast.CallExpr:
			if obj, name, ok := c.lockTransition(x); ok {
				if isLockCall(c.pass, x) {
					held.add(obj, name)
				} else {
					held.remove(obj)
				}
				return true
			}
			if reason, blocks := blockfacts.CallBlocks(c.pass, x); blocks {
				c.report(x.Pos(), held, reason)
			}
			return true
		}
		return true
	})
}

func (c *checker) report(pos token.Pos, held *heldSet, what string) {
	if lock, ok := held.innermost(); ok {
		c.pass.Reportf(pos, "%s held across %s, which can block; release the lock first or annotate with //wbcheck:ignore lockhold -- <why>", lock.name, what)
	}
}

// lockTransition matches mu.Lock/RLock/Unlock/RUnlock on sync.Mutex or
// sync.RWMutex, returning the mutex's terminal object and printable name.
func (c *checker) lockTransition(call *ast.CallExpr) (types.Object, string, bool) {
	fn := c.pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return nil, "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	// The receiver expression minus the method: "s.mu" in s.mu.Lock().
	obj := terminalObject(c.pass, sel.X)
	if obj == nil {
		return nil, "", false
	}
	return obj, types.ExprString(sel.X), true
}

func isLockCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	return fn != nil && (fn.Name() == "Lock" || fn.Name() == "RLock")
}

// terminalObject resolves the identity of a mutex expression: the last
// selected field, or the identifier itself.
func terminalObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.Info.Uses[x]
	case *ast.SelectorExpr:
		return pass.Info.Uses[x.Sel]
	}
	return nil
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed && named.Obj() != nil {
		return named.Obj().Name()
	}
	return ""
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChanExpr(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
