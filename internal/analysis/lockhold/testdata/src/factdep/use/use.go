// Package use holds a lock across a call into dep; whether that is flagged
// depends entirely on the Blocks fact dep exported — nothing in this
// package blocks directly.
package use

import (
	"sync"

	"webbrief/internal/analysis/lockhold/testdata/src/factdep/dep"
)

type S struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// BadFlushLocked calls the imported blocker with the lock held.
func (s *S) BadFlushLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = dep.Flush(s.ch) // want "held across calls Flush"
}

// GoodSizeLocked calls an imported non-blocker with the lock held.
func (s *S) GoodSizeLocked(xs []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = dep.Size(xs)
}
