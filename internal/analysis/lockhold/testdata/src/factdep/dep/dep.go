// Package dep exports Flush, whose ability to block travels to importing
// packages as a blockfacts Blocks fact.
package dep

// Flush drains ch until the producer closes it.
func Flush(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Size is trivially non-blocking.
func Size(xs []int) int { return len(xs) }
