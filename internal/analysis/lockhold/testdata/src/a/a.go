// Package a is the lockhold fixture: locks held (and not held) across
// blocking operations.
package a

import "sync"

type Q struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	wg    sync.WaitGroup
	count int
}

// BadRecvLocked receives on a channel with the mutex held.
func (q *Q) BadRecvLocked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "q.mu held across channel receive"
}

// BadWaitLocked waits on a WaitGroup with the mutex held.
func (q *Q) BadWaitLocked() {
	q.mu.Lock()
	q.wg.Wait() // want "held across sync.WaitGroup.Wait"
	q.mu.Unlock()
}

// BadTransitive blocks through a same-package callee whose summary comes
// from blockfacts.
func (q *Q) BadTransitive() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.flush() // want "held across calls flush"
}

// BadReadLocked shows RWMutex read locks are tracked too.
func (q *Q) BadReadLocked() {
	q.rw.RLock()
	q.ch <- 1 // want "q.rw held across channel send"
	q.rw.RUnlock()
}

func (q *Q) flush() {
	for range q.ch {
	}
}

// GoodUnlockFirst releases before blocking.
func (q *Q) GoodUnlockFirst() {
	q.mu.Lock()
	q.count++
	q.mu.Unlock()
	<-q.ch
}

// GoodBranchScoped: the lock lives entirely in one arm; the blocking op in
// the other arm runs unlocked.
func (q *Q) GoodBranchScoped(v int) {
	if v > 0 {
		q.mu.Lock()
		q.count = v
		q.mu.Unlock()
	} else {
		<-q.ch
	}
}

// GoodPollLocked: a select with default cannot block.
func (q *Q) GoodPollLocked() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		q.count = v
		return true
	default:
		return false
	}
}

// GoodPlainWork holds the lock over non-blocking work only.
func (q *Q) GoodPlainWork() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.count++
}
