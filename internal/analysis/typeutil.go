package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleeFunc resolves the *types.Func a call expression invokes, or nil for
// indirect calls, conversions and builtins. It sees through parentheses and
// both ident and selector callees.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsNamed reports whether t (after stripping pointers) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// LastPathSegment returns the final element of an import path ("ag" for
// "webbrief/internal/ag").
func LastPathSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
