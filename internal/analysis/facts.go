package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sync"
)

// Fact is a datum an analyzer attaches to a types.Object in the package that
// declares it, so analysis of importing packages can query it later — a
// stdlib-only miniature of go/analysis facts. Implementations must be
// gob-serializable pointers: facts are encoded when exported and decoded on
// import, which keeps them independent of any one type-checker's object
// identities (a dependency type-checked from source and the same dependency
// imported from export data produce distinct types.Object values for the
// same declaration).
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// factStore holds the serialized facts of every package analyzed so far in
// one driver run. Packages are analyzed in dependency order (see
// RunPackages), so by the time a package is visited the facts of everything
// it imports are present. Keys are stable strings — package path, object
// path within the package, fact type — never object pointers, for the
// identity reason documented on Fact.
type factStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newFactStore() *factStore {
	return &factStore{m: map[string][]byte{}}
}

// objectFactKey names obj's fact of fact's dynamic type, or ok=false for
// objects facts cannot be attached to (no package, or an unsupported kind).
func objectFactKey(obj types.Object, fact Fact) (string, bool) {
	path, ok := objectPath(obj)
	if !ok {
		return "", false
	}
	return obj.Pkg().Path() + "::" + path + "::" + reflect.TypeOf(fact).String(), true
}

// objectPath is a package-relative path for obj that is identical whether
// obj came from type-checking the package's source or from importing its
// export data: "Name" for package-level objects, "Recv.Name" for methods.
func objectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name(), true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name(), true
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj() == nil {
		return "", false
	}
	return named.Obj().Name() + "." + fn.Name(), true
}

func (s *factStore) set(key string, blob []byte) {
	s.mu.Lock()
	s.m[key] = blob
	s.mu.Unlock()
}

func (s *factStore) get(key string) ([]byte, bool) {
	s.mu.Lock()
	blob, ok := s.m[key]
	s.mu.Unlock()
	return blob, ok
}

// ExportObjectFact serializes fact and associates it with obj for importing
// packages (and later passes over the same package) to query. fact must be a
// pointer to a gob-encodable struct. Objects that cannot carry facts are
// silently skipped; encoding failures panic, since they are analyzer bugs.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		return
	}
	key, ok := objectFactKey(obj, fact)
	if !ok {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		panic(fmt.Sprintf("analysis: encoding fact %T for %v: %v", fact, obj, err))
	}
	p.facts.set(key, buf.Bytes())
}

// ImportObjectFact looks up the fact of *fact's type attached to obj by an
// earlier analysis (of this package or of a dependency) and decodes it into
// fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	key, ok := objectFactKey(obj, fact)
	if !ok {
		return false
	}
	blob, ok := p.facts.get(key)
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(fact); err != nil {
		panic(fmt.Sprintf("analysis: decoding fact %T for %v: %v", fact, obj, err))
	}
	return true
}
