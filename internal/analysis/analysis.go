// Package analysis is a minimal, dependency-free static-analysis framework
// in the spirit of golang.org/x/tools/go/analysis, built directly on go/ast
// and go/types so the repository stays stdlib-only. It exists to machine-
// enforce the engine's determinism, numeric-safety and concurrency
// contracts: the conventions the data-parallel trainer and the serving tier
// rely on (fixed-order gradient merges, seed-derived RNGs, tape and pool
// lifecycle discipline, shape-checked kernels, goroutine shutdown wiring,
// no lock held across blocking calls, an exact /metrics partition) are
// promises that nothing in the type system expresses, so cmd/wbcheck runs
// the passes in the sibling packages over the whole tree and fails the
// build on any violation.
//
// Type information comes from `go list -export`, which compiles dependencies
// and hands back export data the stdlib gc importer can read — no vendored
// tooling, no network.
//
// Cross-package analyses build on two driver services: a facts mechanism
// (Pass.ExportObjectFact / Pass.ImportObjectFact — serialized per package,
// visible to dependents; see facts.go) and dependency-ordered scheduling —
// RunPackages analyzes packages in parallel but never starts a package
// before the targets it imports have finished, so bottom-up summaries such
// as blockfacts' blocking/shutdown call-graph facts are always complete
// when a dependent package reads them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check. Run inspects a fully type-checked package via
// the Pass and reports violations with Pass.Reportf. Requires lists
// analyzers that must run first on every package — typically fact
// producers, such as blockfacts, whose summaries the dependent pass imports.
type Analyzer struct {
	Name     string // short kebab-free identifier, e.g. "detmap"
	Doc      string // one-line contract the pass enforces
	Requires []*Analyzer
	Run      func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	facts *factStore
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pass string
	Pos  token.Position
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Msg)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pass: p.Analyzer.Name,
		Pos:  p.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several contracts
// (map-order determinism, literal seeds, exact float comparison) are
// legitimately relaxed in tests — determinism tests in particular compare
// floats bit-for-bit on purpose.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run type-checks the packages matching patterns and applies every analyzer
// (plus its transitive Requires) to each, returning the surviving
// diagnostics sorted by position. Violations annotated with a
// `//wbcheck:ignore [pass...] [-- justification]` comment on the same line,
// the line above, or the line above a multi-line statement that contains
// the violation are suppressed.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers), nil
}

// RunPackages applies the analyzers to already-loaded packages; see Run.
//
// Packages are analyzed concurrently, bounded by GOMAXPROCS, but a package
// never starts before every target package it imports has finished — the
// partial order that makes imported facts complete. Output is deterministic
// regardless of scheduling: diagnostics are merged and position-sorted at
// the end, and facts are keyed by stable object paths.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	analyzers = expandRequires(analyzers)
	facts := newFactStore()

	done := make(map[string]chan struct{}, len(pkgs))
	for _, pkg := range pkgs {
		done[pkg.ImportPath] = make(chan struct{})
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))

	var (
		mu    sync.Mutex
		diags []Diagnostic
		wg    sync.WaitGroup
	)
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			defer close(done[pkg.ImportPath])
			for _, imp := range pkg.Imports {
				if ch, ok := done[imp]; ok {
					<-ch
				}
			}
			sem <- struct{}{}
			pkgDiags := analyzePackage(pkg, analyzers, facts)
			<-sem
			mu.Lock()
			diags = append(diags, pkgDiags...)
			mu.Unlock()
		}(pkg)
	}
	wg.Wait()

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if diags[i].Pass != diags[j].Pass {
			return diags[i].Pass < diags[j].Pass
		}
		return a.Column < b.Column
	})
	return diags
}

// analyzePackage runs every analyzer over one package, in slice order (fact
// producers first, courtesy of expandRequires), and filters the result
// through the package's wbcheck:ignore directives.
func analyzePackage(pkg *Package, analyzers []*Analyzer, facts *factStore) []Diagnostic {
	ignores := collectIgnores(pkg)
	var pkgDiags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &pkgDiags,
			facts:    facts,
		}
		a.Run(pass)
	}
	var kept []Diagnostic
	for _, d := range pkgDiags {
		if !ignores.covers(d) {
			kept = append(kept, d)
		}
	}
	return kept
}

// expandRequires returns analyzers plus their transitive Requires, each once,
// with every requirement ordered before its dependents.
func expandRequires(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := map[*Analyzer]bool{}
	var add func(a *Analyzer)
	add = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, r := range a.Requires {
			add(r)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		add(a)
	}
	return out
}

// ignoreSet records wbcheck:ignore directives two ways: point coverage
// (file/line, for same-line and line-above suppression) and line ranges
// (a directive on the line above a multi-line statement covers every line
// of that statement).
type ignoreSet struct {
	points map[string]map[int][]string
	ranges []ignoreRange
}

type ignoreRange struct {
	file       string
	start, end int
	names      []string
}

func nameMatches(names []string, pass string) bool {
	for _, name := range names {
		if name == "" || name == pass {
			return true
		}
	}
	return false
}

func (s *ignoreSet) covers(d Diagnostic) bool {
	lines := s.points[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if nameMatches(lines[line], d.Pass) {
			return true
		}
	}
	for _, r := range s.ranges {
		if r.file == d.Pos.Filename && r.start <= d.Pos.Line && d.Pos.Line <= r.end &&
			nameMatches(r.names, d.Pass) {
			return true
		}
	}
	return false
}

// parseIgnoreDirective parses `//wbcheck:ignore [pass...] [-- justification]`
// comment text. Pass names end at the first `--`: justification prose after
// it never re-arms as a name even when it mentions a pass. A bare directive
// (no names) suppresses every pass. ok is false for non-directives,
// including lookalikes such as "wbcheck:ignored".
func parseIgnoreDirective(text string) (names []string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimPrefix(text, "//"), "wbcheck:ignore")
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	for _, f := range strings.Fields(rest) {
		if f == "--" {
			break
		}
		names = append(names, f)
	}
	if len(names) == 0 {
		names = []string{""}
	}
	return names, true
}

func collectIgnores(pkg *Package) *ignoreSet {
	set := &ignoreSet{points: map[string]map[int][]string{}}
	for _, f := range pkg.Files {
		// Directive line -> names, for extending coverage over the spans of
		// multi-line statements below.
		directives := map[int][]string{}
		var file string
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnoreDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				file = pos.Filename
				lines := set.points[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set.points[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				directives[pos.Line] = append(directives[pos.Line], names...)
			}
		}
		if len(directives) == 0 {
			continue
		}
		// A directive covers the whole extent of any statement or
		// declaration that starts on its own line (trailing comment) or on
		// the line below — so a diagnostic on the continuation line of a
		// multi-line statement is still suppressed.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Decl:
			default:
				return true
			}
			start := pkg.Fset.Position(n.Pos()).Line
			end := pkg.Fset.Position(n.End()).Line
			if end <= start {
				return true
			}
			for _, dirLine := range []int{start, start - 1} {
				if names, ok := directives[dirLine]; ok {
					set.ranges = append(set.ranges, ignoreRange{
						file:  file,
						start: start,
						end:   end,
						names: names,
					})
				}
			}
			return true
		})
	}
	return set
}
