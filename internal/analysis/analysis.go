// Package analysis is a minimal, dependency-free static-analysis framework
// in the spirit of golang.org/x/tools/go/analysis, built directly on go/ast
// and go/types so the repository stays stdlib-only. It exists to machine-
// enforce the engine's determinism and numeric-safety contracts: the
// conventions PR 1's data-parallel trainer relies on (fixed-order gradient
// merges, seed-derived RNGs, tape lifecycle discipline, shape-checked
// kernels) are promises that nothing in the type system expresses, so
// cmd/wbcheck runs the passes in the sibling packages over the whole tree
// and fails the build on any violation.
//
// Type information comes from `go list -export`, which compiles dependencies
// and hands back export data the stdlib gc importer can read — no vendored
// tooling, no network.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a fully type-checked package via
// the Pass and reports violations with Pass.Reportf.
type Analyzer struct {
	Name string // short kebab-free identifier, e.g. "detmap"
	Doc  string // one-line contract the pass enforces
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pass string
	Pos  token.Position
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Msg)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pass: p.Analyzer.Name,
		Pos:  p.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several contracts
// (map-order determinism, literal seeds, exact float comparison) are
// legitimately relaxed in tests — determinism tests in particular compare
// floats bit-for-bit on purpose.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run type-checks the packages matching patterns and applies every analyzer
// to each, returning the surviving diagnostics sorted by position.
// Violations annotated with a `//wbcheck:ignore [pass...]` comment on the
// same line or the line above are suppressed.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers), nil
}

// RunPackages applies the analyzers to already-loaded packages; see Run.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if !ignores.covers(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Pass < diags[j].Pass
	})
	return diags
}

// ignoreSet maps file -> line -> pass names ("" = all passes) for
// wbcheck:ignore directives.
type ignoreSet map[string]map[int][]string

func (s ignoreSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "" || name == d.Pass {
				return true
			}
		}
	}
	return false
}

func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "wbcheck:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				names := strings.Fields(strings.TrimPrefix(text, "wbcheck:ignore"))
				if len(names) == 0 {
					names = []string{""}
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return set
}
