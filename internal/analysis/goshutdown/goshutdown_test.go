package goshutdown_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/goshutdown"
)

func TestGoshutdown(t *testing.T) {
	analysistest.Run(t, goshutdown.Analyzer, "./testdata/src/a")
}
