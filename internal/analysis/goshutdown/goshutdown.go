// Package goshutdown defines a wbcheck pass enforcing the serving tier's
// goroutine-lifecycle contract: every `go` statement in non-test code must
// be tied to a shutdown path, so draining a server or finishing a training
// epoch cannot leak goroutines. A spawn is considered tied when the spawned
// body (or, for named functions, the blockfacts ShutdownAware summary —
// computed transitively, across packages) selects or receives on a done-ish
// channel or ctx.Done(), signals completion by sending on one, ranges over
// a channel (exits when the producer closes it), or defers WaitGroup.Done.
// Intentional process-lifetime goroutines carry a justified
// `//wbcheck:ignore goshutdown -- why` instead.
package goshutdown

import (
	"go/ast"

	"webbrief/internal/analysis"
	"webbrief/internal/analysis/blockfacts"
)

// Analyzer implements the goshutdown pass.
var Analyzer = &analysis.Analyzer{
	Name:     "goshutdown",
	Doc:      "every go statement in non-test code must be tied to a shutdown path (ctx/done select, completion send, channel range, or WaitGroup.Done)",
	Requires: []*analysis.Analyzer{blockfacts.Analyzer},
	Run:      run,
}

const remedy = "wire a ctx/done select, completion send, or WaitGroup, or annotate with //wbcheck:ignore goshutdown -- <why>"

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				if _, aware := blockfacts.BodyShutdown(pass, lit.Body); !aware {
					pass.Reportf(gs.Pos(), "goroutine is not tied to a shutdown path; %s", remedy)
				}
				return true
			}
			fn := pass.CalleeFunc(gs.Call)
			if fn == nil {
				pass.Reportf(gs.Pos(), "goroutine spawns a dynamic function value the analysis cannot follow; %s", remedy)
				return true
			}
			if _, aware := blockfacts.FuncShutdown(pass, fn); !aware {
				pass.Reportf(gs.Pos(), "goroutine %s is not tied to a shutdown path; %s", fn.Name(), remedy)
			}
			return true
		})
	}
}
