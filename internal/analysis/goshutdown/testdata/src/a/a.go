// Package a is the goshutdown fixture: goroutines with and without a
// shutdown tie.
package a

import (
	"context"
	"sync"
)

// BadFireAndForget spawns a loop nothing can stop.
func BadFireAndForget(work func()) {
	go func() { // want "not tied to a shutdown path"
		for {
			work()
		}
	}()
}

// BadDynamic spawns a function value the analysis cannot follow.
func BadDynamic(fn func()) {
	go fn() // want "dynamic function value"
}

func spin() {
	for {
	}
}

// BadNamed spawns a named function with no shutdown tie of its own.
func BadNamed() {
	go spin() // want "spin is not tied to a shutdown path"
}

// GoodCtx polls ctx.Done between work items.
func GoodCtx(ctx context.Context, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			work()
		}
	}()
}

// GoodWaitGroup is the fork-join shape: defer wg.Done ties the goroutine's
// lifetime to the spawner's Wait.
func GoodWaitGroup(items []int, fn func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			fn(it)
		}(it)
	}
	wg.Wait()
}

// GoodRange exits when the producer closes the channel.
func GoodRange(ch chan int, fn func(int)) {
	go func() {
		for v := range ch {
			fn(v)
		}
	}()
}

func drain(stop chan struct{}, work func()) {
	for {
		select {
		case <-stop:
			return
		default:
			work()
		}
	}
}

// GoodNamed spawns a function whose ShutdownAware fact comes from the
// blockfacts summary of its body.
func GoodNamed(stop chan struct{}, work func()) {
	go drain(stop, work)
}

// GoodDoneSignal signals completion on a done channel.
func GoodDoneSignal(result chan error, run func() error) {
	done := make(chan error, 1)
	go func() { done <- run() }()
	result <- <-done
}

// IgnoredJustified shows the escape hatch for intentional process-lifetime
// goroutines.
func IgnoredJustified() {
	//wbcheck:ignore goshutdown -- fixture: process-lifetime pump, exits with the program
	go func() {
		for {
		}
	}()
}
