// Package cache is the two-partition metricpart fixture: a Metrics struct
// carrying both a requests_total partition (clean) and a
// cache_lookups_total partition with a stale registry entry, a snapshot
// block drifted both ways, and an unregistered cache counter bumped at an
// outcome site.
package cache

import (
	"net/http"
	"sync/atomic"
)

// Metrics carries both totals, so both partition specs apply.
type Metrics struct {
	Requests atomic.Int64
	OK       atomic.Int64

	CacheLookups atomic.Int64
	CacheHits    atomic.Int64
	CacheMisses  atomic.Int64
	CacheSkipped atomic.Int64 // cache outcome nobody registered
}

var requestOutcomeFields = []string{
	"OK",
}

var cacheOutcomeFields = []string{
	"CacheHits",
	"CacheMisses",
	"Phantom", // want "not an atomic.Int64 field"
}

type snapshot struct {
	RequestsTotal int64 `json:"requests_total"`
	Responses     struct {
		OK int64 `json:"ok"`
	} `json:"responses"`
	Cache struct {
		CacheLookups  int64    `json:"cache_lookups_total"`
		CacheOutcomes struct { // want "registered outcome CacheMisses is missing"
			CacheHits int64 `json:"cache_hits_total"`
			Stray     int64 `json:"stray"` // want "not a registered outcome"
		} `json:"outcomes"`
	} `json:"cache"`
}

// Snapshot keeps the fixture types and fields referenced.
func Snapshot(m *Metrics) snapshot {
	var s snapshot
	s.RequestsTotal = m.Requests.Load()
	s.Responses.OK = m.OK.Load()
	s.Cache.CacheLookups = m.CacheLookups.Load()
	s.Cache.CacheOutcomes.CacheHits = m.CacheHits.Load() + m.CacheMisses.Load() + m.CacheSkipped.Load()
	return s
}

// ServeHit bumps registered outcomes of both partitions where the status
// is written: clean.
func ServeHit(m *Metrics, w http.ResponseWriter) {
	m.Requests.Add(1)
	m.CacheLookups.Add(1)
	m.CacheHits.Add(1)
	m.OK.Add(1)
	w.WriteHeader(http.StatusOK)
}

// ServeBypass bumps an unregistered cache counter at an outcome site.
func ServeBypass(m *Metrics, w http.ResponseWriter) {
	m.CacheSkipped.Add(1) // want "not registered in any metrics partition"
	http.Error(w, "bypass", http.StatusServiceUnavailable)
}
