// Package a is the metricpart fixture: a Metrics struct whose
// requests_total partition has one unregistered counter bumped at an
// outcome site, a stale registry entry, and a snapshot drifted both ways.
package a

import (
	"net/http"
	"sync/atomic"
)

// Metrics mirrors the serving metrics shape: Requests is partitioned by the
// outcome counters named in requestOutcomeFields.
type Metrics struct {
	Requests atomic.Int64

	OK       atomic.Int64
	Overload atomic.Int64
	Teapot   atomic.Int64 // outcome counter nobody registered

	InFlight atomic.Int64 // gauge, not an outcome
}

var requestOutcomeFields = []string{
	"OK",
	"Overload",
	"Gone", // want "not an atomic.Int64 field"
}

type snapshot struct {
	RequestsTotal int64    `json:"requests_total"`
	Responses     struct { // want "registered outcome Overload is missing"
		OK    int64 `json:"ok"`
		Extra int64 `json:"extra"` // want "not a registered outcome"
	} `json:"responses"`
}

// Snapshot keeps the fixture types and fields referenced.
func Snapshot(m *Metrics) snapshot {
	var s snapshot
	s.RequestsTotal = m.Requests.Load()
	s.Responses.OK = m.OK.Load()
	s.Responses.Extra = m.Overload.Load() + m.Teapot.Load() + m.InFlight.Load()
	return s
}

// HandleOK bumps a registered outcome where the status is written: clean.
func HandleOK(m *Metrics, w http.ResponseWriter) {
	m.Requests.Add(1)
	m.OK.Add(1)
	w.WriteHeader(http.StatusOK)
}

// Reject bumps an unregistered counter at an outcome site.
func Reject(m *Metrics, w http.ResponseWriter) {
	m.Teapot.Add(1) // want "not registered in any metrics partition"
	http.Error(w, "teapot", http.StatusTeapot)
}

// Track moves a gauge outside any outcome site: clean.
func Track(m *Metrics) {
	m.InFlight.Add(1)
	m.InFlight.Add(-1)
}
