// Package cascade is the cascade-partition metricpart fixture: a Metrics
// struct carrying a clean requests_total partition plus a
// cascade_requests_total partition with a stale registry entry, a
// CascadeTiers snapshot block drifted both ways, and an unregistered
// cascade counter bumped at an outcome site.
package cascade

import (
	"net/http"
	"sync/atomic"
)

// Metrics carries both totals, so both partition specs apply.
type Metrics struct {
	Requests atomic.Int64
	OK       atomic.Int64

	CascadeRequests atomic.Int64
	CascadeStudent  atomic.Int64
	CascadeTeacher  atomic.Int64
	CascadeRefused  atomic.Int64 // cascade outcome nobody registered
}

var requestOutcomeFields = []string{
	"OK",
}

var cascadeOutcomeFields = []string{
	"CascadeStudent",
	"CascadeTeacher",
	"CascadeGhost", // want "not an atomic.Int64 field"
}

type snapshot struct {
	RequestsTotal int64 `json:"requests_total"`
	Responses     struct {
		OK int64 `json:"ok"`
	} `json:"responses"`
	Cascade struct {
		CascadeRequests int64    `json:"cascade_requests_total"`
		CascadeTiers    struct { // want "registered outcome CascadeTeacher is missing"
			CascadeStudent int64 `json:"student_total"`
			Stray          int64 `json:"stray"` // want "not a registered outcome"
		} `json:"tiers"`
	} `json:"cascade"`
}

// Snapshot keeps the fixture types and fields referenced.
func Snapshot(m *Metrics) snapshot {
	var s snapshot
	s.RequestsTotal = m.Requests.Load()
	s.Responses.OK = m.OK.Load()
	s.Cascade.CascadeRequests = m.CascadeRequests.Load()
	s.Cascade.CascadeTiers.CascadeStudent = m.CascadeStudent.Load() + m.CascadeTeacher.Load() + m.CascadeRefused.Load()
	return s
}

// ServeStudent bumps registered outcomes of both partitions where the
// status is written: clean.
func ServeStudent(m *Metrics, w http.ResponseWriter) {
	m.Requests.Add(1)
	m.CascadeRequests.Add(1)
	m.CascadeStudent.Add(1)
	m.OK.Add(1)
	w.WriteHeader(http.StatusOK)
}

// ServeRefused bumps an unregistered cascade counter at an outcome site.
func ServeRefused(m *Metrics, w http.ResponseWriter) {
	m.CascadeRefused.Add(1) // want "not registered in any metrics partition"
	http.Error(w, "refused", http.StatusServiceUnavailable)
}
