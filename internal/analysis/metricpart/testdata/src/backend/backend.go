// Package backend is the backend-partition metricpart fixture: a gateway-
// shaped Metrics struct carrying a clean requests_total partition plus a
// backend_requests_total partition with a stale registry entry, a
// BackendOutcomes snapshot block drifted both ways, and an unregistered
// per-attempt counter bumped at an outcome site.
package backend

import (
	"net/http"
	"sync/atomic"
)

// Metrics carries both totals, so both partition specs apply.
type Metrics struct {
	Requests atomic.Int64
	Proxied  atomic.Int64

	BackendRequests atomic.Int64
	BackendOK       atomic.Int64
	BackendError    atomic.Int64
	BackendDropped  atomic.Int64 // attempt outcome nobody registered
}

var requestOutcomeFields = []string{
	"Proxied",
}

var backendOutcomeFields = []string{
	"BackendOK",
	"BackendError",
	"BackendGhost", // want "not an atomic.Int64 field"
}

type snapshot struct {
	RequestsTotal int64 `json:"requests_total"`
	Responses     struct {
		Proxied int64 `json:"proxied"`
	} `json:"responses"`
	BackendRequestsTotal int64    `json:"backend_requests_total"`
	BackendOutcomes      struct { // want "registered outcome BackendError is missing"
		BackendOK int64 `json:"backend_ok_total"`
		Stray     int64 `json:"stray"` // want "not a registered outcome"
	} `json:"outcomes"`
}

// Snapshot keeps the fixture types and fields referenced.
func Snapshot(m *Metrics) snapshot {
	var s snapshot
	s.RequestsTotal = m.Requests.Load()
	s.Responses.Proxied = m.Proxied.Load()
	s.BackendRequestsTotal = m.BackendRequests.Load()
	s.BackendOutcomes.BackendOK = m.BackendOK.Load() + m.BackendError.Load() + m.BackendDropped.Load()
	return s
}

// Relay bumps registered outcomes of both partitions where the status is
// written: clean.
func Relay(m *Metrics, w http.ResponseWriter) {
	m.Requests.Add(1)
	m.BackendRequests.Add(1)
	m.BackendOK.Add(1)
	m.Proxied.Add(1)
	w.WriteHeader(http.StatusOK)
}

// RelayDropped bumps an unregistered attempt counter at an outcome site.
func RelayDropped(m *Metrics, w http.ResponseWriter) {
	m.BackendDropped.Add(1) // want "not registered in any metrics partition"
	http.Error(w, "dropped", http.StatusBadGateway)
}
