// Package metricpart defines a wbcheck pass keeping the /metrics
// requests_total partition exact as outcome counters are added. It applies
// to any package declaring a `Metrics` struct with a `Requests
// atomic.Int64` field (internal/serve today) and enforces three clauses of
// one contract:
//
//  1. the package declares a `requestOutcomeFields` registry — the string
//     names of the atomic.Int64 Metrics fields that partition
//     requests_total — and every registry entry names such a field;
//  2. the snapshot struct's `Responses` field (what /metrics serves and the
//     reconciliation tests sum) carries exactly the registered outcomes:
//     nothing missing, nothing extra;
//  3. at every outcome site — a statement list that records a response
//     status (assigns a `.Status` or calls http.Error/WriteHeader) — any
//     Metrics counter bumped with .Add must be a registered outcome (or
//     Requests itself). Bumping an unregistered counter where an outcome is
//     decided is how the partition silently drifts from requests_total.
//
// Gauges and non-outcome counters (InFlight, Retries, batching totals) are
// untouched: they are only checked where a status is being recorded.
package metricpart

import (
	"go/ast"
	"go/types"
	"sort"

	"webbrief/internal/analysis"
)

// Analyzer implements the metricpart pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricpart",
	Doc:  "atomic outcome counters on a Metrics struct must be registered in the requests_total partition (requestOutcomeFields) and mirrored in the Responses snapshot",
	Run:  run,
}

const registryName = "requestOutcomeFields"

func run(pass *analysis.Pass) {
	m := findMetrics(pass)
	if m == nil {
		return
	}
	registered := checkRegistry(pass, m)
	if registered == nil {
		return
	}
	checkSnapshot(pass, registered)
	checkOutcomeSites(pass, m, registered)
}

// metricsInfo describes the package's Metrics struct.
type metricsInfo struct {
	spec   *ast.TypeSpec
	fields map[string]*types.Var // atomic.Int64 fields only, by name
}

// findMetrics locates a `Metrics` struct with a `Requests atomic.Int64`
// field; packages without one are out of scope for this pass.
func findMetrics(pass *analysis.Pass) *metricsInfo {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Metrics" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				info := &metricsInfo{spec: ts, fields: map[string]*types.Var{}}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						v, ok := pass.Info.Defs[name].(*types.Var)
						if ok && analysis.IsNamed(v.Type(), "sync/atomic", "Int64") {
							info.fields[name.Name] = v
						}
					}
				}
				if _, ok := info.fields["Requests"]; ok {
					return info
				}
			}
		}
	}
	return nil
}

// checkRegistry finds the requestOutcomeFields string-slice literal and
// validates every entry against the Metrics fields, returning the
// registered set (nil when the registry itself is missing).
func checkRegistry(pass *analysis.Pass, m *metricsInfo) map[string]bool {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != registryName || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					registered := map[string]bool{}
					for _, elt := range lit.Elts {
						bl, ok := elt.(*ast.BasicLit)
						if !ok {
							continue
						}
						outcome := stripQuotes(bl.Value)
						if _, isField := m.fields[outcome]; !isField {
							// Not propagated to the snapshot expectation:
							// one mistake, one report.
							pass.Reportf(bl.Pos(), "requestOutcomeFields entry %q is not an atomic.Int64 field of Metrics", outcome)
							continue
						}
						registered[outcome] = true
					}
					return registered
				}
			}
		}
	}
	pass.Reportf(m.spec.Pos(), "Metrics partitions requests_total but the package has no %s registry; declare the outcome-field list so the partition is checkable", registryName)
	return nil
}

// checkSnapshot compares the inner fields of any struct field named
// `Responses` against the registered outcomes.
func checkSnapshot(pass *analysis.Pass, registered map[string]bool) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if len(f.Names) != 1 || f.Names[0].Name != "Responses" {
					continue
				}
				inner, ok := f.Type.(*ast.StructType)
				if !ok {
					continue
				}
				present := map[string]bool{}
				for _, rf := range inner.Fields.List {
					for _, name := range rf.Names {
						present[name.Name] = true
						if !registered[name.Name] {
							pass.Reportf(name.Pos(), "Responses snapshot field %s is not a registered outcome; add it to %s or drop it", name.Name, registryName)
						}
					}
				}
				for _, outcome := range sortedKeys(registered) {
					if !present[outcome] {
						pass.Reportf(f.Names[0].Pos(), "registered outcome %s is missing from the Responses snapshot", outcome)
					}
				}
			}
			return true
		})
	}
}

// checkOutcomeSites flags unregistered Metrics counter bumps in any
// statement list that records a response status.
func checkOutcomeSites(pass *analysis.Pass, m *metricsInfo, registered map[string]bool) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch x := n.(type) {
			case *ast.BlockStmt:
				list = x.List
			case *ast.CaseClause:
				list = x.Body
			case *ast.CommClause:
				list = x.Body
			default:
				return true
			}
			if !hasStatusSignal(pass, list) {
				return true
			}
			for _, st := range list {
				es, ok := st.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				field, ok := metricsAddField(pass, m, call)
				if !ok || field == "Requests" || registered[field] {
					continue
				}
				pass.Reportf(call.Pos(), "outcome site bumps Metrics.%s, which is not registered in the requests_total partition; add %q to %s (and the Responses snapshot) or move the bump out of the outcome site", field, field, registryName)
			}
			return true
		})
	}
}

// hasStatusSignal reports whether a statement list directly records a
// response status: an assignment to a `.Status` field, or a call to
// http.Error / WriteHeader.
func hasStatusSignal(pass *analysis.Pass, list []ast.Stmt) bool {
	for _, st := range list {
		switch x := st.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "Status" {
					return true
				}
			}
		case *ast.ExprStmt:
			call, ok := x.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := pass.CalleeFunc(call)
			if fn == nil {
				continue
			}
			if fn.Name() == "WriteHeader" {
				return true
			}
			if fn.Name() == "Error" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
				return true
			}
		}
	}
	return false
}

// metricsAddField matches `<expr>.<Field>.Add(...)` where Field is an
// atomic.Int64 field of the package's Metrics struct, returning the field
// name.
func metricsAddField(pass *analysis.Pass, m *metricsInfo, call *ast.CallExpr) (string, bool) {
	addSel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || addSel.Sel.Name != "Add" {
		return "", false
	}
	fieldSel, ok := ast.Unparen(addSel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fieldObj, ok := pass.Info.Uses[fieldSel.Sel].(*types.Var)
	if !ok {
		return "", false
	}
	if declared, isField := m.fields[fieldSel.Sel.Name]; !isField || declared != fieldObj {
		return "", false
	}
	return fieldSel.Sel.Name, true
}

func stripQuotes(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
