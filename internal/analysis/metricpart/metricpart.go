// Package metricpart defines a wbcheck pass keeping the /metrics total
// partitions exact as outcome counters are added. It applies to any package
// declaring a `Metrics` struct with a `Requests atomic.Int64` field
// (internal/serve and internal/gateway today) and enforces three clauses
// of one contract, for each partition the struct carries (the partitions
// table below — requests_total always, cache_lookups_total when the struct
// has a CacheLookups counter, cascade_requests_total when it has a
// CascadeRequests counter, backend_requests_total when it has a
// BackendRequests counter):
//
//  1. the package declares the partition's registry — a []string of the
//     atomic.Int64 Metrics field names that partition the total — and every
//     registry entry names such a field;
//  2. the snapshot struct's outcome block (what /metrics serves and the
//     reconciliation tests sum: `Responses` for requests_total,
//     `CacheOutcomes` for cache_lookups_total, `CascadeTiers` for
//     cascade_requests_total) carries exactly the registered outcomes:
//     nothing missing, nothing extra;
//  3. at every outcome site — a statement list that records a response
//     status (assigns a `.Status` or calls http.Error/WriteHeader) — any
//     Metrics counter bumped with .Add must be a registered outcome of some
//     partition (or one of the totals). Bumping an unregistered counter
//     where an outcome is decided is how a partition silently drifts from
//     its total.
//
// Gauges and non-outcome counters (InFlight, Retries, batching totals) are
// untouched: they are only checked where a status is being recorded.
package metricpart

import (
	"go/ast"
	"go/types"
	"sort"

	"webbrief/internal/analysis"
)

// Analyzer implements the metricpart pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricpart",
	Doc:  "atomic outcome counters on a Metrics struct must be registered in their total's partition registry (requestOutcomeFields, cacheOutcomeFields, cascadeOutcomeFields) and mirrored in the matching snapshot block",
	Run:  run,
}

// partitionSpec binds one exact-partition contract: the Metrics total
// counter, the registry naming the outcome fields that partition it, and
// the snapshot struct field mirroring those outcomes.
type partitionSpec struct {
	total    string // Metrics total field the outcomes must sum to
	registry string // package-level []string registry variable
	snapshot string // snapshot field carrying one field per outcome
	metric   string // exported metric name, for report wording
}

// partitions lists the known contracts. A spec only applies when the
// Metrics struct declares its total field, so packages without a cache
// (or fixtures predating it) are not forced to carry an empty registry.
var partitions = []partitionSpec{
	{total: "Requests", registry: "requestOutcomeFields", snapshot: "Responses", metric: "requests_total"},
	{total: "CacheLookups", registry: "cacheOutcomeFields", snapshot: "CacheOutcomes", metric: "cache_lookups_total"},
	{total: "CascadeRequests", registry: "cascadeOutcomeFields", snapshot: "CascadeTiers", metric: "cascade_requests_total"},
	{total: "BackendRequests", registry: "backendOutcomeFields", snapshot: "BackendOutcomes", metric: "backend_requests_total"},
}

func run(pass *analysis.Pass) {
	m := findMetrics(pass)
	if m == nil {
		return
	}
	// allowed accumulates every counter an outcome site may bump: the
	// totals themselves plus all registered outcomes across partitions.
	allowed := map[string]bool{}
	complete := true
	for _, spec := range partitions {
		if _, ok := m.fields[spec.total]; !ok {
			continue
		}
		allowed[spec.total] = true
		registered := checkRegistry(pass, m, spec)
		if registered == nil {
			// The registry report is the actionable error; site checks
			// would only cascade false positives on top of it.
			complete = false
			continue
		}
		checkSnapshot(pass, spec, registered)
		for outcome := range registered {
			allowed[outcome] = true
		}
	}
	if complete {
		checkOutcomeSites(pass, m, allowed)
	}
}

// metricsInfo describes the package's Metrics struct.
type metricsInfo struct {
	spec   *ast.TypeSpec
	fields map[string]*types.Var // atomic.Int64 fields only, by name
}

// findMetrics locates a `Metrics` struct with a `Requests atomic.Int64`
// field; packages without one are out of scope for this pass.
func findMetrics(pass *analysis.Pass) *metricsInfo {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Metrics" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				info := &metricsInfo{spec: ts, fields: map[string]*types.Var{}}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						v, ok := pass.Info.Defs[name].(*types.Var)
						if ok && analysis.IsNamed(v.Type(), "sync/atomic", "Int64") {
							info.fields[name.Name] = v
						}
					}
				}
				if _, ok := info.fields["Requests"]; ok {
					return info
				}
			}
		}
	}
	return nil
}

// checkRegistry finds the spec's string-slice registry literal and
// validates every entry against the Metrics fields, returning the
// registered set (nil when the registry itself is missing).
func checkRegistry(pass *analysis.Pass, m *metricsInfo, spec partitionSpec) map[string]bool {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != spec.registry || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					registered := map[string]bool{}
					for _, elt := range lit.Elts {
						bl, ok := elt.(*ast.BasicLit)
						if !ok {
							continue
						}
						outcome := stripQuotes(bl.Value)
						if _, isField := m.fields[outcome]; !isField {
							// Not propagated to the snapshot expectation:
							// one mistake, one report.
							pass.Reportf(bl.Pos(), "%s entry %q is not an atomic.Int64 field of Metrics", spec.registry, outcome)
							continue
						}
						registered[outcome] = true
					}
					return registered
				}
			}
		}
	}
	pass.Reportf(m.spec.Pos(), "Metrics partitions %s but the package has no %s registry; declare the outcome-field list so the partition is checkable", spec.metric, spec.registry)
	return nil
}

// checkSnapshot compares the inner fields of any struct field named after
// the spec's snapshot block against the registered outcomes.
func checkSnapshot(pass *analysis.Pass, spec partitionSpec, registered map[string]bool) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if len(f.Names) != 1 || f.Names[0].Name != spec.snapshot {
					continue
				}
				inner, ok := f.Type.(*ast.StructType)
				if !ok {
					continue
				}
				present := map[string]bool{}
				for _, rf := range inner.Fields.List {
					for _, name := range rf.Names {
						present[name.Name] = true
						if !registered[name.Name] {
							pass.Reportf(name.Pos(), "%s snapshot field %s is not a registered outcome; add it to %s or drop it", spec.snapshot, name.Name, spec.registry)
						}
					}
				}
				for _, outcome := range sortedKeys(registered) {
					if !present[outcome] {
						pass.Reportf(f.Names[0].Pos(), "registered outcome %s is missing from the %s snapshot", outcome, spec.snapshot)
					}
				}
			}
			return true
		})
	}
}

// checkOutcomeSites flags Metrics counter bumps outside the allowed set
// (partition totals and registered outcomes) in any statement list that
// records a response status.
func checkOutcomeSites(pass *analysis.Pass, m *metricsInfo, allowed map[string]bool) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch x := n.(type) {
			case *ast.BlockStmt:
				list = x.List
			case *ast.CaseClause:
				list = x.Body
			case *ast.CommClause:
				list = x.Body
			default:
				return true
			}
			if !hasStatusSignal(pass, list) {
				return true
			}
			for _, st := range list {
				es, ok := st.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				field, ok := metricsAddField(pass, m, call)
				if !ok || allowed[field] {
					continue
				}
				pass.Reportf(call.Pos(), "outcome site bumps Metrics.%s, which is not registered in any metrics partition; add %q to its partition registry (and snapshot block) or move the bump out of the outcome site", field, field)
			}
			return true
		})
	}
}

// hasStatusSignal reports whether a statement list directly records a
// response status: an assignment to a `.Status` field, or a call to
// http.Error / WriteHeader.
func hasStatusSignal(pass *analysis.Pass, list []ast.Stmt) bool {
	for _, st := range list {
		switch x := st.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "Status" {
					return true
				}
			}
		case *ast.ExprStmt:
			call, ok := x.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := pass.CalleeFunc(call)
			if fn == nil {
				continue
			}
			if fn.Name() == "WriteHeader" {
				return true
			}
			if fn.Name() == "Error" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
				return true
			}
		}
	}
	return false
}

// metricsAddField matches `<expr>.<Field>.Add(...)` where Field is an
// atomic.Int64 field of the package's Metrics struct, returning the field
// name.
func metricsAddField(pass *analysis.Pass, m *metricsInfo, call *ast.CallExpr) (string, bool) {
	addSel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || addSel.Sel.Name != "Add" {
		return "", false
	}
	fieldSel, ok := ast.Unparen(addSel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fieldObj, ok := pass.Info.Uses[fieldSel.Sel].(*types.Var)
	if !ok {
		return "", false
	}
	if declared, isField := m.fields[fieldSel.Sel.Name]; !isField || declared != fieldObj {
		return "", false
	}
	return fieldSel.Sel.Name, true
}

func stripQuotes(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
