package metricpart_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/metricpart"
)

func TestMetricpart(t *testing.T) {
	analysistest.Run(t, metricpart.Analyzer, "./testdata/src/a")
}

func TestMetricpartCachePartition(t *testing.T) {
	analysistest.Run(t, metricpart.Analyzer, "./testdata/src/cache")
}

func TestMetricpartCascadePartition(t *testing.T) {
	analysistest.Run(t, metricpart.Analyzer, "./testdata/src/cascade")
}

func TestMetricpartBackendPartition(t *testing.T) {
	analysistest.Run(t, metricpart.Analyzer, "./testdata/src/backend")
}
