// Package tapelife enforces the pooled-tape lifecycle around ag.GetTape /
// ag.PutTape. A tape taken from the pool and never returned leaks its
// arenas; one returned on only some paths corrupts the pool on panic. The
// contract is the pattern used throughout internal/wb:
//
//	t := ag.GetTape()
//	defer ag.PutTape(t)
//
// Two violations are flagged, per function literal or declaration:
//
//   - an ag.GetTape call in a function (or closure) with no deferred
//     ag.PutTape in that same function — a closure's deferred PutTape does
//     not cover its enclosing function's tape, and vice versa;
//   - Tape.Reset on a variable bound to a GetTape result: GetTape already
//     returns a reset tape, and a mid-lifetime Reset invalidates nodes the
//     surrounding code may still hold (exactly the use-after-Reset class the
//     wbdebug runtime layer traps).
package tapelife

import (
	"go/ast"
	"go/types"

	"webbrief/internal/analysis"
)

// Analyzer is the tapelife pass.
var Analyzer = &analysis.Analyzer{
	Name: "tapelife",
	Doc:  "ag.GetTape requires a deferred ag.PutTape in the same function; never Reset a pooled tape",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkScope(pass, fn.Body)
			}
			return true
		})
	}
}

// checkScope inspects one function body without descending into nested
// function literals (each gets its own checkScope call from run).
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var getCalls []*ast.CallExpr
	pooled := map[types.Object]bool{}
	hasDeferredPut := false
	var resets []struct {
		call *ast.CallExpr
		obj  types.Object
	}

	walkScope(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if isAgFunc(pass, st.Call, "PutTape") {
				hasDeferredPut = true
			}
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) == 1 {
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && isAgFunc(pass, call, "GetTape") {
					if id, ok := st.Lhs[0].(*ast.Ident); ok {
						if obj := objectOf(pass, id); obj != nil {
							pooled[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isAgFunc(pass, st, "GetTape") {
				getCalls = append(getCalls, st)
			}
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Reset" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := objectOf(pass, id); obj != nil {
						resets = append(resets, struct {
							call *ast.CallExpr
							obj  types.Object
						}{st, obj})
					}
				}
			}
		}
	})

	if !hasDeferredPut {
		for _, call := range getCalls {
			pass.Reportf(call.Pos(),
				"ag.GetTape without a deferred ag.PutTape in the same function leaks the pooled tape")
		}
	}
	for _, r := range resets {
		if pooled[r.obj] {
			pass.Reportf(r.call.Pos(),
				"Reset on pooled tape %s: GetTape returns a reset tape, and a mid-lifetime Reset invalidates live nodes",
				r.obj.Name())
		}
	}
}

// walkScope visits every node under body except the interiors of nested
// function literals.
func walkScope(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isAgFunc reports whether call invokes the named package-level function of
// webbrief/internal/ag (resolving both `ag.GetTape()` and, inside package ag
// itself, plain `GetTape()`).
func isAgFunc(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	fn := pass.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "webbrief/internal/ag" && fn.Name() == name
}

func objectOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}
