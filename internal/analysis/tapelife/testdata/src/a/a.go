// Package a is a tapelife fixture: pooled-tape lifecycle violations and the
// sanctioned get/defer-put pattern.
package a

import "webbrief/internal/ag"

// BadLeak takes a pooled tape and never returns it.
func BadLeak() int {
	t := ag.GetTape() // want "without a deferred ag.PutTape"
	return t.Len()
}

// BadNonDeferredPut returns the tape, but not via defer: a panic between
// Get and Put corrupts the pool.
func BadNonDeferredPut() {
	t := ag.GetTape() // want "without a deferred ag.PutTape"
	ag.PutTape(t)
}

// BadPooledReset resets a pooled tape mid-lifetime.
func BadPooledReset() {
	t := ag.GetTape()
	defer ag.PutTape(t)
	t.Reset() // want "Reset on pooled tape"
}

// BadClosureScope: the closure's deferred PutTape covers the closure's own
// tape, not the enclosing function's.
func BadClosureScope() {
	outer := ag.GetTape() // want "without a deferred ag.PutTape"
	f := func() {
		inner := ag.GetTape()
		defer ag.PutTape(inner)
		_ = inner.Len()
	}
	f()
	_ = outer.Len()
}

// Good is the sanctioned pattern.
func Good() int {
	t := ag.GetTape()
	defer ag.PutTape(t)
	return t.Len()
}

// GoodPrivateReset resets a private arena tape, which is exactly what Reset
// is for — only pooled tapes are off limits.
func GoodPrivateReset() {
	t := ag.NewArenaTape()
	for i := 0; i < 3; i++ {
		t.Reset()
	}
}
