package tapelife_test

import (
	"testing"

	"webbrief/internal/analysis/analysistest"
	"webbrief/internal/analysis/tapelife"
)

func TestTapelife(t *testing.T) {
	analysistest.Run(t, tapelife.Analyzer, "./testdata/src/a")
}
