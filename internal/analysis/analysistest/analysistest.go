// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against `// want "substring"` annotations in the fixture
// source — a stdlib-only miniature of golang.org/x/tools' package of the
// same name. Fixtures live under testdata/src/<pkg> (invisible to ./...
// patterns, so known-bad code never trips the real gate) and must compile:
// `go list -export` builds them to produce the type information the passes
// need.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"webbrief/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"([^"]+)"`)

// expectation is one `// want` annotation.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// Run loads the fixture package at dir (e.g. "./testdata/src/a"), applies a,
// and requires an exact correspondence between reported diagnostics and
// `// want` annotations: every diagnostic must land on an annotated line and
// contain the annotated substring, and every annotation must be hit.
// Analyzers named in a's Requires (fact producers such as blockfacts) run
// first automatically, exactly as under the real driver.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	RunAll(t, dir, a)
}

// RunAll is Run for several analyzers over one fixture — the shape the
// directive tests need, where one `//wbcheck:ignore` names multiple passes.
func RunAll(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load([]string{dir})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := analysis.RunPackages(pkgs, analyzers)
	wants := collectWants(pkgs)

	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Msg) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

// claim marks the first unmatched expectation satisfied by the diagnostic.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.line == line && strings.HasSuffix(file, w.file) && strings.Contains(msg, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants walks the fixture comments for `// want` annotations.
func collectWants(pkgs []*analysis.Package) []*expectation {
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, substr: m[1]})
				}
			}
		}
	}
	return wants
}
