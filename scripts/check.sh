#!/usr/bin/env bash
# Pre-merge gate for webbrief. Run from the repo root before every merge:
#
#     ./scripts/check.sh          # full gate (~2 min, dominated by fuzzing)
#     FUZZTIME=0 ./scripts/check.sh   # skip the fuzz smoke for quick loops
#
# Order is cheapest-first so failures surface fast: build, vet, the wbcheck
# lint suite (determinism, numeric safety, and the cross-package
# concurrency/resource-safety passes), the race-enabled unit tests for the
# concurrency-bearing packages, then a short coverage-guided fuzz smoke over
# every fuzz target (seeded from the crasher-shaped corpora under
# testdata/fuzz/). wbdebug-tagged tests exercise the runtime invariant layer
# (NaN/Inf kernel guards, tape lifecycle checks).
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME=${FUZZTIME:-20s}

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== wbcheck (determinism + numeric-safety + concurrency/resource-safety lints, 9 passes)"
go run ./cmd/wbcheck ./...

echo "== race-enabled tests (ag, nn, wb, serve, tensor, briefcache, snapshot: e2e + load soak + kernel equivalence)"
go test -race ./internal/ag ./internal/nn ./internal/wb ./internal/serve ./internal/tensor \
    ./internal/briefcache ./internal/snapshot

echo "== cache race gate (singleflight herd, coalesced-failure replay, sharded LRU churn, matcher equivalence)"
go test -race -run 'TestCache|TestFlight|TestSuffixMatcher' ./internal/briefcache ./internal/serve

echo "== chaos suite (seeded fault injection: crawler retries/breaker, serve ejection/drain races)"
go test -race -run 'Chaos' ./internal/fault ./internal/crawler ./internal/serve

echo "== wbdebug invariant layer"
go test -tags wbdebug ./internal/ag ./internal/tensor

echo "== allocation regression gates (warm fast path must stay allocation-free)"
go test -run 'TestInferTapeAllocationFree|TestPackBufReuse|TestInferScratchAllocs' \
    ./internal/ag ./internal/tensor ./internal/wb

echo "== kernel equivalence (blocked kernels vs naive reference, exact equality)"
go test -run 'TestKernelEquivalence|TestBeamSearchScratchMatchesReference|TestScratchBriefMatchesHeapTape' \
    ./internal/tensor ./internal/nn ./internal/wb

echo "== batched equivalence (fused B-row forward/beam vs per-request path, exact equality, ragged batches)"
go test -race -run 'TestBiLSTMForwardBatchMatchesSerial|TestBeamSearchBatchMatchesScratch|TestBatchedWireEquivalence|TestBatchedDeadlineMidWindow' \
    ./internal/nn ./internal/serve

echo "== batched chaos gate (micro-batching on, one replica faulted, >=99% success)"
go test -race -run 'TestChaosServeBatchedSoak' ./internal/serve

echo "== cached chaos gate (cache on, one replica faulted, >=99% success, no garbage cached)"
go test -race -run 'TestChaosServeCachedSoak' ./internal/serve

echo "== gateway chaos gate (backend killed cold mid-load, fleet hot reload mid-chaos, >=99% success, exact /metrics reconciliation)"
go test -race -run 'TestGatewayChaosSoak|TestGatewayFailoverAndBreaker|TestHotReloadEquivalence|TestAdminReload' \
    ./internal/gateway ./internal/serve

echo "== ring determinism gate (golden assignments, remapping bound, permutation stability)"
go test -run 'TestRing' ./internal/gateway

echo "== cascade equivalence (float32 student vs float64 teacher: wire bytes, tier partition, quality gate)"
go test -race -run 'TestCascade' ./internal/serve
go test -run 'TestStudent|TestConvertJointWB' ./internal/wb

echo "== float32 kernel bench smoke (Kernels32 benchmarks stay runnable)"
go test -run '^$' -bench 'Kernels32' -benchtime 1x ./internal/tensor >/dev/null

echo "== wbserve smoke (train tiny bundle, boot, curl /brief + /metrics, drain)"
SMOKEDIR=$(mktemp -d)
SERVE_PID=""
B1_PID=""
B2_PID=""
GATE_PID=""
trap 'for p in "$SERVE_PID" "$B1_PID" "$B2_PID" "$GATE_PID"; do [[ -n "$p" ]] && kill "$p" 2>/dev/null; done; rm -rf "$SMOKEDIR"' EXIT
go run ./cmd/wbtrain -domains 2 -pages 4 -epochs 2 -out "$SMOKEDIR/model.bin" >/dev/null 2>&1
go build -o "$SMOKEDIR/wbserve" ./cmd/wbserve
"$SMOKEDIR/wbserve" -model "$SMOKEDIR/model.bin" -addr 127.0.0.1:18080 -replicas 2 -queue 8 -quiet &
SERVE_PID=$!
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18080/healthz >/dev/null 2>&1 && break
    sleep 0.2
done
curl -sf http://127.0.0.1:18080/healthz | grep -q '"status":"ok"'
printf '<html><body><h1>title : novel edition</h1><div>price : $ 9.99</div></body></html>' \
    | curl -sf --data-binary @- http://127.0.0.1:18080/brief | grep -q '"Topic"'
curl -sf http://127.0.0.1:18080/metrics | grep -q '"requests_total": 1'
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "   wbserve smoke ok"

echo "== wbserve batched smoke (same bundle, -batch-window on, concurrent curls coalesce)"
"$SMOKEDIR/wbserve" -model "$SMOKEDIR/model.bin" -addr 127.0.0.1:18081 -replicas 2 -queue 8 \
    -batch-window 5ms -batch-max 4 -quiet &
SERVE_PID=$!
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18081/healthz >/dev/null 2>&1 && break
    sleep 0.2
done
PAGE='<html><body><h1>title : novel edition</h1><div>price : $ 9.99</div></body></html>'
CURL_PIDS=""
for i in 1 2 3 4; do
    ( printf '%s' "$PAGE" | curl -sf --data-binary @- http://127.0.0.1:18081/brief | grep -q '"Topic"' ) &
    CURL_PIDS="$CURL_PIDS $!"
done
for pid in $CURL_PIDS; do wait "$pid"; done
curl -sf http://127.0.0.1:18081/metrics | python3 -c '
import json,sys
m = json.load(sys.stdin)
assert m["requests_total"] == 4 == m["responses"]["ok"], m["responses"]
b = m["batching"]
assert b["enabled"] and b["batches_total"] >= 1, b
assert b["batch_size"]["sum"] == 4, b
'
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "   wbserve batched smoke ok"

echo "== wbserve cached smoke (wbsnap gob->snapshot, -cache on, repeat post hits without a replica)"
go run ./cmd/wbsnap -in "$SMOKEDIR/model.bin" -out "$SMOKEDIR/model.snap"
go run ./cmd/wbsnap -info "$SMOKEDIR/model.snap" | grep -q 'jointwb/params'
"$SMOKEDIR/wbserve" -model "$SMOKEDIR/model.snap" -addr 127.0.0.1:18082 -replicas 2 -queue 8 \
    -cache 256 -quiet &
SERVE_PID=$!
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18082/healthz >/dev/null 2>&1 && break
    sleep 0.2
done
PAGE='<html><body><h1>title : novel edition</h1><div>price : $ 9.99</div></body></html>'
FIRST=$(printf '%s' "$PAGE" | curl -sf --data-binary @- http://127.0.0.1:18082/brief)
SECOND=$(printf '%s' "$PAGE" | curl -sf --data-binary @- http://127.0.0.1:18082/brief)
[[ "$FIRST" == "$SECOND" && "$FIRST" == *'"Topic"'* ]]
curl -sf http://127.0.0.1:18082/metrics | python3 -c '
import json,sys
m = json.load(sys.stdin)
c = m["cache"]
assert c["enabled"] and c["cache_lookups_total"] == 2, c
o = c["outcomes"]
assert o["cache_hits_total"] == 1 and o["cache_misses_total"] == 1 and o["cache_coalesced_total"] == 0, o
assert c["cache_lookups_total"] == sum(o.values()), (c, o)
'
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "   wbserve cached smoke ok"

echo "== wbserve cascade smoke (-cascade on, student tier serves, /metrics cascade block reconciles)"
go run ./cmd/wbsnap -in "$SMOKEDIR/model.bin" -out "$SMOKEDIR/student.snap" -student
go run ./cmd/wbsnap -info "$SMOKEDIR/student.snap" | grep -q 'jointwb32/params.*float32'
"$SMOKEDIR/wbserve" -model "$SMOKEDIR/model.bin" -addr 127.0.0.1:18083 -replicas 2 -queue 8 \
    -cascade -confidence-threshold 0.5 -quiet &
SERVE_PID=$!
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18083/healthz >/dev/null 2>&1 && break
    sleep 0.2
done
PAGE='<html><body><h1>title : novel edition</h1><div>price : $ 9.99</div></body></html>'
printf '%s' "$PAGE" | curl -sf --data-binary @- http://127.0.0.1:18083/brief | grep -q '"Topic"'
curl -sf http://127.0.0.1:18083/metrics | python3 -c '
import json,sys
m = json.load(sys.stdin)
c = m["cascade"]
assert c["enabled"] and c["confidence_threshold"] == 0.5, c
t = c["tiers"]
assert c["cascade_requests_total"] == 1 == t["student_total"] + t["teacher_total"], c
assert c["latency_ms"]["student"]["count"] == 1, c
assert c["latency_ms"]["teacher"]["count"] == t["teacher_total"], c
'
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "   wbserve cascade smoke ok"

echo "== wbgate fleet smoke (1 gateway + 2 backends: routed curls, rolling hot reload, one backend killed cold, /metrics reconciles)"
go build -o "$SMOKEDIR/wbgate" ./cmd/wbgate
"$SMOKEDIR/wbserve" -model "$SMOKEDIR/model.bin" -addr 127.0.0.1:18084 -replicas 2 -queue 8 -quiet &
B1_PID=$!
"$SMOKEDIR/wbserve" -model "$SMOKEDIR/model.bin" -addr 127.0.0.1:18085 -replicas 2 -queue 8 -quiet &
B2_PID=$!
"$SMOKEDIR/wbgate" -backends 127.0.0.1:18084,127.0.0.1:18085 -addr 127.0.0.1:18086 \
    -breaker-threshold 2 -breaker-cooldown 200ms -probe-interval 50ms 2>/dev/null &
GATE_PID=$!
for i in $(seq 1 50); do
    curl -sf http://127.0.0.1:18084/healthz >/dev/null 2>&1 \
        && curl -sf http://127.0.0.1:18085/healthz >/dev/null 2>&1 \
        && curl -sf http://127.0.0.1:18086/healthz >/dev/null 2>&1 && break
    sleep 0.2
done
curl -sf http://127.0.0.1:18086/healthz | grep -q '"status":"ok"'
PAGE='<html><body><h1>title : novel edition</h1><div>price : $ 9.99</div></body></html>'
for d in books-0.example books-1.example books-2.example books-3.example; do
    printf '%s' "$PAGE" | curl -sf --data-binary @- "http://127.0.0.1:18086/brief?src=https://$d/p" | grep -q '"Topic"'
done
curl -sf -X POST http://127.0.0.1:18086/admin/reload | python3 -c '
import json,sys
r = json.load(sys.stdin)
assert r["reloaded"] == 2 and r["fleet_generation"] == 2, r
'
kill -9 "$B2_PID"
wait "$B2_PID" 2>/dev/null || true
B2_PID=""
for d in books-0.example books-1.example books-2.example books-3.example; do
    printf '%s' "$PAGE" | curl -sf --data-binary @- "http://127.0.0.1:18086/brief?src=https://$d/p" | grep -q '"Topic"'
done
curl -sf http://127.0.0.1:18086/metrics | python3 -c '
import json,sys
m = json.load(sys.stdin)
assert m["requests_total"] == 8 == m["responses"]["proxied"], m["responses"]
assert m["backend_requests_total"] == m["outcomes"]["backend_ok_total"] + m["outcomes"]["backend_error_total"], m["outcomes"]
assert m["reload"]["fleet_generation"] == 2 and m["reload"]["fleet_reloads_total"] == 1, m["reload"]
'
kill -TERM "$GATE_PID" "$B1_PID"
wait "$GATE_PID" "$B1_PID" 2>/dev/null || true
GATE_PID=""
B1_PID=""
echo "   wbgate fleet smoke ok"

if [[ "$FUZZTIME" != "0" ]]; then
    echo "== fuzz smoke (${FUZZTIME} per target)"
    go test -run='^$' -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/htmldom
    go test -run='^$' -fuzz=FuzzUnescapeEntities -fuzztime="$FUZZTIME" ./internal/htmldom
    go test -run='^$' -fuzz=FuzzNormalize -fuzztime="$FUZZTIME" ./internal/textproc
    go test -run='^$' -fuzz=FuzzWordPiece -fuzztime="$FUZZTIME" ./internal/textproc
    go test -run='^$' -fuzz='FuzzDecode$' -fuzztime="$FUZZTIME" ./internal/snapshot
    go test -run='^$' -fuzz=FuzzReader -fuzztime="$FUZZTIME" ./internal/snapshot
    go test -run='^$' -fuzz=FuzzDecodeSnapshot -fuzztime="$FUZZTIME" ./internal/wb
fi

echo "ALL CHECKS PASSED"
