#!/usr/bin/env bash
# Pre-merge gate for webbrief. Run from the repo root before every merge:
#
#     ./scripts/check.sh          # full gate (~2 min, dominated by fuzzing)
#     FUZZTIME=0 ./scripts/check.sh   # skip the fuzz smoke for quick loops
#
# Order is cheapest-first so failures surface fast: build, vet, the wbcheck
# determinism/numeric-safety lints, the race-enabled unit tests for the two
# concurrency-bearing packages, then a short coverage-guided fuzz smoke over
# every fuzz target (seeded from the crasher-shaped corpora under
# testdata/fuzz/). wbdebug-tagged tests exercise the runtime invariant layer
# (NaN/Inf kernel guards, tape lifecycle checks).
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME=${FUZZTIME:-20s}

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== wbcheck (determinism + numeric-safety lints)"
go run ./cmd/wbcheck ./...

echo "== race-enabled tests (ag, wb)"
go test -race ./internal/ag ./internal/wb

echo "== wbdebug invariant layer"
go test -tags wbdebug ./internal/ag ./internal/tensor

if [[ "$FUZZTIME" != "0" ]]; then
    echo "== fuzz smoke (${FUZZTIME} per target)"
    go test -run='^$' -fuzz=FuzzParse -fuzztime="$FUZZTIME" ./internal/htmldom
    go test -run='^$' -fuzz=FuzzUnescapeEntities -fuzztime="$FUZZTIME" ./internal/htmldom
    go test -run='^$' -fuzz=FuzzNormalize -fuzztime="$FUZZTIME" ./internal/textproc
    go test -run='^$' -fuzz=FuzzWordPiece -fuzztime="$FUZZTIME" ./internal/textproc
fi

echo "ALL CHECKS PASSED"
