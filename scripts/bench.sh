#!/usr/bin/env bash
# Standard benchmark runner for webbrief perf PRs. Runs the serving-path and
# kernel benchmarks and emits a BENCH_N.json skeleton with the machine block
# filled in and the raw `go test -bench` output captured alongside, so a PR
# only has to paste its before/after numbers and write the summary.
#
#     ./scripts/bench.sh 4             # writes bench-out/BENCH_4.skeleton.json
#     BENCHTIME=100x ./scripts/bench.sh 4
#
# Conventions (see BENCH_1..3.json at the repo root):
#   - "before" holds the previous PR's numbers for the same benchmarks (copy
#     them from the last BENCH_N.json, or check out the parent commit and run
#     this script there);
#   - "after" holds this tree's numbers;
#   - ns_op / b_op / allocs_op come verbatim from -benchmem output.
set -euo pipefail
cd "$(dirname "$0")/.."

N=${1:?usage: bench.sh <N> (the BENCH_N.json index this PR will publish)}
BENCHTIME=${BENCHTIME:-30x}
OUT=bench-out
mkdir -p "$OUT"

echo "== serving path (full HTTP: parse, admission, 3-stage briefing, JSON)"
go test -bench 'ServeBrief$|ServeBriefSerialMutex|ServeBriefCascade' -benchtime "$BENCHTIME" -run '^$' -benchmem -cpu 1 . \
    | tee "$OUT/serve.txt"

echo "== throughput vs concurrency (micro-batching off/on, clients 1/4/16)"
go test -bench 'ServeBriefConcurrency' -benchtime "$BENCHTIME" -run '^$' -benchmem -cpu 1,2,4 . \
    | tee "$OUT/concurrency.txt"

echo "== cache hit path (full HTTP, every timed request served from the briefing cache)"
go test -bench 'ServeBriefCacheHit' -benchtime "$BENCHTIME" -run '^$' -benchmem -cpu 1 . \
    | tee "$OUT/cachehit.txt"

echo "== cold boot + replica cloning (binary snapshot vs legacy gob)"
go test -bench 'ColdBoot|CloneMany' -benchtime "$BENCHTIME" -run '^$' -benchmem ./internal/wb \
    | tee "$OUT/coldboot.txt"

echo "== warm scratch fast path (wb.MakeBriefWith, no HTTP)"
go test -bench 'MakeBriefScratch' -benchtime "$BENCHTIME" -run '^$' -benchmem ./internal/wb \
    | tee "$OUT/scratch.txt"

echo "== matmul / transpose kernels (naive reference vs blocked vs packed, f64 + f32)"
go test -bench 'Kernels' -benchtime "$BENCHTIME" -run '^$' -benchmem ./internal/tensor \
    | tee "$OUT/kernels.txt"

echo "== cascade tiers (f64 teacher vs f32 student, encode + topic decode, toy + paper scale)"
go test -bench 'CascadeTiers' -benchtime "$BENCHTIME" -run '^$' -benchmem ./internal/wb \
    | tee "$OUT/cascade.txt"

GOVER=$(go env GOVERSION)
GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
CPU=$(awk -F': ' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)
NCPU=$(nproc 2>/dev/null || echo 1)

cat > "$OUT/BENCH_${N}.skeleton.json" <<EOF
{
  "pr": ${N},
  "title": "FILL ME",
  "date": "$(date +%F)",
  "machine": {
    "goos": "${GOOS}",
    "goarch": "${GOARCH}",
    "go": "${GOVER}",
    "cpu": "${CPU}",
    "physical_cpus": ${NCPU},
    "note": "FILL ME (anything that qualifies the numbers: core count, noise, -cpu flags)"
  },
  "command": "BENCHTIME=${BENCHTIME} ./scripts/bench.sh ${N}",
  "before": { "note": "previous PR's numbers — copy from the last BENCH_N.json or rerun there" },
  "after": { "note": "this tree — transcribe from bench-out/*.txt" },
  "summary": {}
}
EOF

echo
echo "raw output in $OUT/{serve,concurrency,cachehit,coldboot,scratch,kernels,cascade}.txt"
echo "skeleton written to $OUT/BENCH_${N}.skeleton.json — fill before/after/summary and move to BENCH_${N}.json"
