// End-to-end integration test over the public workflow: generate websites,
// crawl them (§IV-A1), train Joint-WB on the kept content pages, serialize
// the model bundle, reload it, and brief a previously unseen HTML page —
// the exact path the cmd/ tools drive, in one deterministic test.
package webbrief_test

import (
	"bytes"
	"strings"
	"testing"

	"webbrief/internal/corpus"
	"webbrief/internal/crawler"
	"webbrief/internal/embed"
	"webbrief/internal/wb"

	"math/rand"
)

func TestEndToEndCrawlTrainSerializeBrief(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(99))

	// 1. Crawl two generated websites.
	var pages []*corpus.Page
	for _, name := range []string{"books", "jobs"} {
		site := corpus.GenerateSite(corpus.DomainByName(name), 8, rng)
		res, err := crawler.Crawl(crawler.MapFetcher(site.Pages), site.Home, crawler.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Content) != 8 {
			t.Fatalf("%s: crawler kept %d pages, want 8", name, len(res.Content))
		}
		for _, cp := range res.Content {
			pages = append(pages, site.ContentPages[cp.URL])
		}
	}

	// 2. Train a small Joint-WB on the crawled pages.
	v := corpus.BuildVocab(pages)
	insts := wb.NewInstances(pages, v, 0)
	var docs [][]int
	for _, p := range pages {
		var doc []int
		for _, s := range p.Sentences {
			doc = append(doc, v.IDs(s.Tokens)...)
		}
		docs = append(docs, doc)
	}
	gcfg := embed.DefaultGloVeConfig(16)
	gcfg.Seed = 99
	enc := wb.NewGloVeEncoder(embed.TrainGloVe(docs, v.Size(), gcfg))
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	cfg.Seed = 99
	model := wb.NewJointWB("Joint-WB", enc, v.Size(), cfg)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 25
	wb.TrainModel(model, insts, tc)

	em, _ := wb.EvaluateTopics(model, insts, v, 4, 4)
	if em < 75 {
		t.Fatalf("training fit too weak for the rest of the test: EM %.1f", em)
	}

	// 3. Serialize, reload.
	var buf bytes.Buffer
	if err := wb.SaveJointWB(&buf, model, v); err != nil {
		t.Fatal(err)
	}
	loaded, lv, err := wb.LoadJointWB(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Brief an external, never-generated HTML page with the RELOADED
	// model — the cmd/wbrief path.
	const page = `<html><head><title>x</title></head><body>
<nav><div>home about contact help</div></nav>
<main><h1>title : novel bestseller</h1>
<div>author : emma smith</div>
<div>price : $ 12.99</div>
<div>pages : 208</div>
<p>the hardcover is popular with visitors</p></main>
<footer><div>copyright 2021 all rights reserved</div></footer>
</body></html>`
	inst := wb.InstanceFromHTML(page, lv, 0)
	brief := wb.MakeBrief(loaded, inst, lv, 4)
	if len(brief.Topic) == 0 {
		t.Fatal("no topic decoded")
	}
	if got := strings.Join(brief.Topic, " "); got != "book shopping website" {
		t.Fatalf("briefed topic %q, want book shopping website", got)
	}
	if len(brief.Attributes) == 0 {
		t.Fatal("no attributes extracted")
	}
	// The price must be among the extracted attributes.
	foundPrice := false
	for _, attr := range brief.Attributes {
		if strings.Contains(strings.Join(attr, " "), "$") {
			foundPrice = true
		}
	}
	if !foundPrice {
		t.Fatalf("price attribute missing from briefing: %v", brief.Attributes)
	}
}
