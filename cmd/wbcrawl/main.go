// Command wbcrawl demonstrates the structure-driven crawler of §IV-A1: it
// generates synthetic websites (one per requested domain), crawls each from
// its homepage, filters out index and multimedia pages, and reports — or
// saves — the content-rich pages the models train on.
//
// The crawl is resilient: per-fetch deadlines, capped-jitter backoff
// retries, a per-host rate limiter and a circuit breaker, with failures
// reported per URL instead of aborting the crawl. The -faults flag wraps
// the fetcher in internal/fault's deterministic chaos layer, so the same
// seed replays the same outages:
//
//	wbcrawl -faults 0.3 -faultseed 7 -fetch-timeout 250ms
//
// Usage:
//
//	wbcrawl [-domains books,jobs] [-pages N] [-seed N] [-dump dir]
//	        [-faults RATE] [-faultseed N] [-retries N] [-fetch-timeout D] [-rps R]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"webbrief/internal/corpus"
	"webbrief/internal/crawler"
	"webbrief/internal/fault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbcrawl: ")
	domains := flag.String("domains", "books,jobs,recipes", "comma-separated domain names (see corpus.Domains)")
	pages := flag.Int("pages", 20, "content pages generated per website")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "directory to write the kept content pages' HTML into")
	retries := flag.Int("retries", 3, "retries per fetch after the first attempt")
	fetchTimeout := flag.Duration("fetch-timeout", 2*time.Second, "per-fetch deadline (0 = none)")
	rps := flag.Float64("rps", 0, "per-host fetch rate limit in requests/second (0 = unlimited)")
	faults := flag.Float64("faults", 0, "injected fault rate in [0,1] (0 = no fault injection)")
	faultseed := flag.Int64("faultseed", 1, "seed for the injected fault schedule")
	flag.Parse()

	cfg := crawler.DefaultConfig()
	cfg.Seed = *seed
	cfg.Retries = *retries
	cfg.FetchTimeout = *fetchTimeout
	cfg.HostRPS = *rps

	var sched *fault.Schedule
	if *faults > 0 {
		fcfg := fault.DefaultConfig(*faultseed)
		fcfg.Rate = *faults
		sched = fault.NewSchedule(fcfg)
	}

	rng := rand.New(rand.NewSource(*seed))
	var totalKept, totalVisited, totalFailed, totalRetries int
	for _, name := range strings.Split(*domains, ",") {
		name = strings.TrimSpace(name)
		d := corpus.DomainByName(name)
		if d == nil {
			log.Fatalf("unknown domain %q", name)
		}
		site := corpus.GenerateSite(d, *pages, rng)
		var f crawler.Fetcher = crawler.MapFetcher(site.Pages)
		if sched != nil {
			f = fault.NewFetcher(f, sched)
		}
		res, err := crawler.Crawl(f, site.Home, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s visited %3d pages: %3d content, %d index, %d media, %d failed, %d retries\n",
			name, res.Visited, len(res.Content), len(res.Index), len(res.Media), len(res.Failed), res.Retries)
		for _, fl := range res.Failed {
			fmt.Printf("%-12s   failed %s after %d attempts: %s\n", "", fl.URL, fl.Attempts, fl.Reason)
		}
		totalKept += len(res.Content)
		totalVisited += res.Visited
		totalFailed += len(res.Failed)
		totalRetries += res.Retries
		if *dump != "" {
			dir := filepath.Join(*dump, name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
			for i, cp := range res.Content {
				out := filepath.Join(dir, fmt.Sprintf("page%03d.html", i))
				if err := os.WriteFile(out, []byte(cp.HTML), 0o644); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("%-12s wrote %d files to %s\n", "", len(res.Content), dir)
		}
	}
	fmt.Printf("total: kept %d content-rich pages out of %d visited (%d failed, %d retries)\n",
		totalKept, totalVisited, totalFailed, totalRetries)
	if sched != nil {
		fmt.Printf("fault injection: seed %d rate %.2f injected %d faults over %d draws\n",
			*faultseed, *faults, sched.Injected(), sched.Draws())
	}
}
