// Command wbcrawl demonstrates the structure-driven crawler of §IV-A1: it
// generates synthetic websites (one per requested domain), crawls each from
// its homepage, filters out index and multimedia pages, and reports — or
// saves — the content-rich pages the models train on.
//
// Usage:
//
//	wbcrawl [-domains books,jobs] [-pages N] [-seed N] [-dump dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"webbrief/internal/corpus"
	"webbrief/internal/crawler"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbcrawl: ")
	domains := flag.String("domains", "books,jobs,recipes", "comma-separated domain names (see corpus.Domains)")
	pages := flag.Int("pages", 20, "content pages generated per website")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "directory to write the kept content pages' HTML into")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var totalKept, totalVisited int
	for _, name := range strings.Split(*domains, ",") {
		name = strings.TrimSpace(name)
		d := corpus.DomainByName(name)
		if d == nil {
			log.Fatalf("unknown domain %q", name)
		}
		site := corpus.GenerateSite(d, *pages, rng)
		res, err := crawler.Crawl(crawler.MapFetcher(site.Pages), site.Home, crawler.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s visited %3d pages: %3d content, %d index, %d media, %d failed\n",
			name, res.Visited, len(res.Content), len(res.Index), len(res.Media), len(res.Failed))
		totalKept += len(res.Content)
		totalVisited += res.Visited
		if *dump != "" {
			dir := filepath.Join(*dump, name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
			for i, cp := range res.Content {
				out := filepath.Join(dir, fmt.Sprintf("page%03d.html", i))
				if err := os.WriteFile(out, []byte(cp.HTML), 0o644); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("%-12s wrote %d files to %s\n", "", len(res.Content), dir)
		}
	}
	fmt.Printf("total: kept %d content-rich pages out of %d visited\n", totalKept, totalVisited)
}
