// Command wbserve serves webpage briefings over HTTP — the deployment form
// §I motivates ("the functionality of WB may be added to web browsers").
// POST a page's HTML to /brief and receive the hierarchical briefing as
// JSON.
//
// Usage:
//
//	wbserve -model model.bin -addr :8080
//	curl -s --data-binary @page.html http://localhost:8080/brief
//
// Train a model bundle first with cmd/wbtrain.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"webbrief/internal/wb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbserve: ")
	modelPath := flag.String("model", "model.bin", "model bundle from wbtrain")
	addr := flag.String("addr", ":8080", "listen address")
	beam := flag.Int("beam", 8, "beam width for topic decoding")
	flag.Parse()

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatalf("open model: %v (train one with wbtrain)", err)
	}
	m, v, err := wb.LoadJointWB(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/brief", wb.NewBriefer(m, v, *beam, 0))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	log.Printf("serving briefings on %s (POST HTML to /brief)", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
