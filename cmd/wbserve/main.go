// Command wbserve serves webpage briefings over HTTP — the deployment form
// §I motivates ("the functionality of WB may be added to web browsers") —
// on the concurrent serving subsystem of internal/serve: a pool of model
// replicas briefs requests in parallel, a bounded admission queue sheds
// overload with 429, and /metrics exposes counters and per-stage latency
// histograms.
//
// Usage:
//
//	wbserve -model model.bin -addr :8080 -replicas 4 -queue 64 -timeout 30s
//	curl -s --data-binary @page.html http://localhost:8080/brief
//	curl -s http://localhost:8080/metrics
//
// Train a model bundle first with cmd/wbtrain. SIGINT/SIGTERM drain
// gracefully: /healthz flips to 503, in-flight briefings finish, then the
// listener closes.
//
// The server self-heals: a replica that panics or wedges past -stall is
// ejected from rotation (the request retries on another replica, up to
// -replica-retries), probed on -probe-interval, and readmitted after
// consecutive clean probes. The -chaos flag wraps one pool replica in
// internal/fault's deterministic fault injector — a built-in resilience
// drill you can watch through /metrics:
//
//	wbserve -model model.bin -chaos 0.3 -chaosseed 7 -stall 500ms
//
// With -batch-window set, concurrently admitted requests coalesce into one
// fused batched forward pass (up to -batch-max wide) — higher throughput
// under concurrent load for a bounded, deadline-aware latency cost:
//
//	wbserve -model model.bin -batch-window 2ms -batch-max 8
//
// With -cascade set, every briefing first runs on a float32 student copy of
// the model; only decodes whose confidence score falls below
// -confidence-threshold re-run on the full float64 teacher. /metrics gains
// a cascade block with per-tier counters and latency histograms:
//
//	wbserve -model model.bin -cascade -confidence-threshold 0.5
//
// With -cache set, repeat briefings of the same page content are served
// from a content-addressed cache in microseconds — no replica checkout, no
// batching — and concurrent cold misses of one page coalesce into a single
// computation. A -cache-policy file controls per-domain admission and TTL,
// keyed by the optional ?src= query parameter:
//
//	wbserve -model model.bin -cache 4096 -cache-ttl 10m -cache-policy policy.conf
//
// The -model flag accepts the legacy gob bundle or the binary snapshot
// format (wbtrain -format snapshot, or convert with wbsnap); the encoding
// is sniffed from the file's magic bytes.
//
// The model hot-reloads with zero downtime: SIGHUP (or POST /admin/reload)
// re-reads -model, builds and warms a shadow replica pool off-path, and
// atomically swaps it in — in-flight briefings finish on the old
// generation, new admissions brief on the new one. The serving generation
// is visible in /metrics under "reload". Disable the signal handler with
// -reload-signal=false (the admin endpoint still works):
//
//	wbtrain ... -o model.bin        # write a new bundle in place
//	kill -HUP $(pidof wbserve)      # swap it in without dropping a request
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"webbrief/internal/briefcache"
	"webbrief/internal/fault"
	"webbrief/internal/serve"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbserve: ")
	modelPath := flag.String("model", "model.bin", "model bundle from wbtrain")
	addr := flag.String("addr", ":8080", "listen address")
	beam := flag.Int("beam", 8, "beam width for topic decoding")
	replicas := flag.Int("replicas", 0, "model replicas serving concurrently (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "requests allowed to wait for a replica before 429 (-1 = none)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included (0 = none)")
	maxBody := flag.Int64("maxbody", serve.DefaultMaxBodyBytes, "request body limit in bytes (over-limit bodies get 413)")
	drainWait := flag.Duration("drain", 30*time.Second, "max time to drain in-flight briefings on shutdown")
	warm := flag.Bool("warm", true, "brief a synthetic page on every replica before listening, so scratch workspaces are grown ahead of real traffic")
	quiet := flag.Bool("quiet", false, "disable the JSON access log on stderr")
	replicaRetries := flag.Int("replica-retries", 1, "re-runs of a request whose replica panicked or stalled before 500 (-1 = none)")
	stall := flag.Duration("stall", 0, "per-stage watchdog: a stage exceeding this wedges and ejects its replica (0 = disabled)")
	probeEvery := flag.Duration("probe-interval", 25*time.Millisecond, "re-admission probe cadence for ejected replicas")
	probeOK := flag.Int("probe-successes", 2, "consecutive clean probes required to readmit an ejected replica")
	chaos := flag.Float64("chaos", 0, "fault rate in [0,1] injected into ONE pool replica (0 = off) — a resilience drill")
	chaosSeed := flag.Int64("chaosseed", 1, "seed for the -chaos fault schedule")
	batchWindow := flag.Duration("batch-window", 0, "micro-batching window: admitted requests wait up to this long for batchmates before one fused batched forward (0 = off, exact per-request path)")
	batchMax := flag.Int("batch-max", 8, "max requests coalesced into one micro-batch")
	cascade := flag.Bool("cascade", false, "float32 student fast path: brief on a float32 model copy and escalate low-confidence decodes to the float64 teacher")
	confThreshold := flag.Float64("confidence-threshold", 0.5, "cascade escalation cutoff in [0,1]: student decodes whose confidence score falls below it re-run on the teacher")
	cacheCap := flag.Int("cache", 0, "content-addressed briefing cache capacity in entries (0 = off)")
	cacheShards := flag.Int("cache-shards", 0, "cache shard count (0 = default)")
	cacheTTL := flag.Duration("cache-ttl", 0, "default cache entry lifetime (0 = entries never expire)")
	cachePolicyPath := flag.String("cache-policy", "", "per-domain admission/TTL policy file (deny/ttl/default lines; keyed by ?src=)")
	reloadSignal := flag.Bool("reload-signal", true, "hot-reload the -model bundle on SIGHUP (zero downtime; POST /admin/reload always works)")
	flag.Parse()

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatalf("open model: %v (train one with wbtrain)", err)
	}
	m, v, err := wb.LoadModelAuto(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	var policy *briefcache.Policy
	if *cachePolicyPath != "" {
		if policy, err = briefcache.LoadPolicy(*cachePolicyPath); err != nil {
			log.Fatal(err)
		}
	}

	cfg := serve.Config{
		Replicas:            *replicas,
		QueueDepth:          *queue,
		Timeout:             *timeout,
		MaxBodyBytes:        *maxBody,
		BeamWidth:           *beam,
		ReplicaRetries:      *replicaRetries,
		StallTimeout:        *stall,
		ProbeInterval:       *probeEvery,
		ProbeSuccesses:      *probeOK,
		BatchWindow:         *batchWindow,
		BatchMax:            *batchMax,
		Cascade:             *cascade,
		ConfidenceThreshold: *confThreshold,
		CacheCapacity:       *cacheCap,
		CacheShards:         *cacheShards,
		CacheTTL:            *cacheTTL,
		CachePolicy:         policy,
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	srv, err := serve.New(m, v, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetReloadSource(func() (*wb.JointWB, *textproc.Vocab, error) {
		f, err := os.Open(*modelPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		return wb.LoadModelAuto(f)
	})

	if *warm {
		start := time.Now()
		if err := srv.Warm(""); err != nil {
			log.Fatalf("warmup: %v", err)
		}
		log.Printf("warmed %d replica scratch workspaces in %v",
			srv.Pool().Size(), time.Since(start).Round(time.Millisecond))
	}

	// Chaos drill: after warmup, one replica starts drawing faults from a
	// seeded schedule. Ejections, retries and readmissions show on /metrics.
	if *chaos > 0 {
		fcfg := fault.DefaultConfig(*chaosSeed)
		fcfg.Rate = *chaos
		sched := fault.NewSchedule(fcfg)
		err := srv.Pool().WrapOne(func(r serve.Replica) serve.Replica {
			return fault.NewReplica(r, sched)
		})
		if err != nil {
			log.Fatalf("chaos: %v", err)
		}
		log.Printf("chaos drill armed: one replica faulted at rate %.2f, seed %d", *chaos, *chaosSeed)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *reloadSignal {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		//wbcheck:ignore goshutdown -- reload listener lives for the whole process; it exits with it
		go func() {
			for range hup {
				start := time.Now()
				gen, err := srv.ReloadFromSource()
				if err != nil {
					log.Printf("reload: %v (old model keeps serving)", err)
					continue
				}
				log.Printf("reloaded %s: generation %d live in %v",
					*modelPath, gen, time.Since(start).Round(time.Millisecond))
			}
		}()
	}

	errc := make(chan error, 1)
	//wbcheck:ignore goshutdown -- accept loop lives for the whole process; ListenAndServe returns when Shutdown below closes the listener, and the buffered errc send never leaks it
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving briefings on %s: %d replicas, queue %d, timeout %v (POST HTML to /brief; /healthz, /metrics)",
		*addr, srv.Pool().Size(), *queue, *timeout)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("draining (max %v)...", *drainWait)
	srv.BeginShutdown() // /healthz now 503; new briefings refused
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("drained, bye")
}
