// Command wbexp regenerates the paper's evaluation tables (§IV) on the
// synthetic corpus. Each table trains the systems it needs (systems are
// shared across tables within one run) and prints the same rows the paper
// reports.
//
// Usage:
//
//	wbexp [-scale full|smoke] [-table 4|5|6|7|8|9|10|quality|sensitivity|all] [-seed N] [-o out.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"webbrief/internal/corpus"
	"webbrief/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbexp: ")
	scale := flag.String("scale", "smoke", "experiment scale: full (reported numbers, ~30–60 min) or smoke (seconds)")
	table := flag.String("table", "all", "experiment id: "+strings.Join(experiments.AllIDs(), ", ")+", or all")
	seed := flag.Int64("seed", 1, "master random seed")
	out := flag.String("o", "", "also write the tables to this file")
	flag.Parse()

	var opt experiments.Options
	switch *scale {
	case "full":
		opt = experiments.DefaultOptions(experiments.ScaleFull)
	case "smoke":
		opt = experiments.DefaultOptions(experiments.ScaleSmoke)
	default:
		log.Fatalf("unknown scale %q (want full or smoke)", *scale)
	}
	opt.Seed = *seed

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	log.Printf("building setup (scale=%s, seed=%d): corpus, GloVe, MiniBERT MLM pretraining...", *scale, *seed)
	setup, err := experiments.NewSetup(opt)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("setup ready in %v", time.Since(start).Round(time.Second))
	log.Printf("corpus: %s", corpus.ComputeStats(setup.DS.Pages))

	ids := experiments.AllIDs()
	if *table != "all" {
		ids = []string{*table}
	}
	for _, id := range ids {
		t0 := time.Now()
		tab, err := setup.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(w, tab.String())
		log.Printf("experiment %s done in %v", id, time.Since(t0).Round(time.Second))
	}
	log.Printf("all done in %v", time.Since(start).Round(time.Second))
}
