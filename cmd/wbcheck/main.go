// Command wbcheck runs the repository's determinism, numeric-safety and
// concurrency lint suite over the given package patterns (default ./...).
// It is part of the pre-merge gate (scripts/check.sh): a non-empty report
// exits 1.
//
//	go run ./cmd/wbcheck ./...
//	go run ./cmd/wbcheck -json ./...   # machine-readable diagnostics
//
// Passes:
//
//	detmap      range over maps of *ag.Param / model state (random order)
//	seedrand    global math/rand source, literal seeds, time.Now in hot paths
//	floateq     == / != between floating-point operands
//	tapelife    ag.GetTape without deferred ag.PutTape; Reset on pooled tapes
//	shapedoc    exported tensor kernels missing the shape-check preamble
//	goshutdown  go statements not tied to a shutdown path (ctx/done select,
//	            completion send, channel range, or WaitGroup.Done)
//	lockhold    sync.Mutex/RWMutex held across a call that can block on
//	            channels, network, or Wait (transitive, cross-package)
//	poolbalance sync.Pool / Get-Put pair checkout without a Put on every
//	            return path (defer it, hand it off, or Put before returning)
//	metricpart  atomic outcome counters not registered in the requests_total
//	            partition (requestOutcomeFields + Responses snapshot)
//
// The last four ride on a cross-package facts layer: the blockfacts
// summarizer runs first over every package in dependency order and exports
// which functions can block and which are shutdown-aware, so lockhold and
// goshutdown reason about transitive behaviour ("MakeBrief fork-joins on a
// WaitGroup three packages down") instead of single bodies. Packages are
// analyzed in parallel; output is position-sorted and deterministic.
//
// A violation can be suppressed — with justification in review — by a
// `//wbcheck:ignore [pass...] [-- justification]` comment on the same
// line, the line above, or the line above the multi-line statement that
// contains it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"webbrief/internal/analysis"
	"webbrief/internal/analysis/detmap"
	"webbrief/internal/analysis/floateq"
	"webbrief/internal/analysis/goshutdown"
	"webbrief/internal/analysis/lockhold"
	"webbrief/internal/analysis/metricpart"
	"webbrief/internal/analysis/poolbalance"
	"webbrief/internal/analysis/seedrand"
	"webbrief/internal/analysis/shapedoc"
	"webbrief/internal/analysis/tapelife"
)

var passes = []*analysis.Analyzer{
	detmap.Analyzer,
	floateq.Analyzer,
	goshutdown.Analyzer,
	lockhold.Analyzer,
	metricpart.Analyzer,
	poolbalance.Analyzer,
	seedrand.Analyzer,
	shapedoc.Analyzer,
	tapelife.Analyzer,
}

// jsonDiagnostic is the -json wire shape, one object per line.
type jsonDiagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Pass string `json:"pass"`
	Msg  string `json:"msg"`
}

func main() {
	list := flag.Bool("passes", false, "list the registered passes and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON objects, one per line")
	flag.Parse()
	if *list {
		for _, a := range passes {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(patterns, passes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbcheck:", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			enc.Encode(jsonDiagnostic{
				File: d.Pos.Filename,
				Line: d.Pos.Line,
				Col:  d.Pos.Column,
				Pass: d.Pass,
				Msg:  d.Msg,
			})
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wbcheck: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
