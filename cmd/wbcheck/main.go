// Command wbcheck runs the repository's determinism and numeric-safety lint
// suite over the given package patterns (default ./...). It is part of the
// pre-merge gate (scripts/check.sh): a non-empty report exits 1.
//
//	go run ./cmd/wbcheck ./...
//
// Passes:
//
//	detmap    range over maps of *ag.Param / model state (random order)
//	seedrand  global math/rand source, literal seeds, time.Now in hot paths
//	floateq   == / != between floating-point operands
//	tapelife  ag.GetTape without deferred ag.PutTape; Reset on pooled tapes
//	shapedoc  exported tensor kernels missing the shape-check preamble
//
// A violation can be suppressed — with justification in review — by a
// `//wbcheck:ignore [pass...]` comment on the same line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"

	"webbrief/internal/analysis"
	"webbrief/internal/analysis/detmap"
	"webbrief/internal/analysis/floateq"
	"webbrief/internal/analysis/seedrand"
	"webbrief/internal/analysis/shapedoc"
	"webbrief/internal/analysis/tapelife"
)

var passes = []*analysis.Analyzer{
	detmap.Analyzer,
	floateq.Analyzer,
	seedrand.Analyzer,
	shapedoc.Analyzer,
	tapelife.Analyzer,
}

func main() {
	list := flag.Bool("passes", false, "list the registered passes and exit")
	flag.Parse()
	if *list {
		for _, a := range passes {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(patterns, passes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbcheck:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wbcheck: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
