// Command wbtrain trains a Joint-WB model on the synthetic webpage corpus
// and saves the model bundle (weights + vocabulary) for cmd/wbrief and
// cmd/wbserve.
//
// Usage:
//
//	wbtrain [-domains N] [-pages N] [-epochs N] [-hidden N] [-embdim N] [-seed N] [-workers N] -out model.bin
//	wbtrain -format snapshot -out model.snap   # versioned binary snapshot instead of gob
//
// The snapshot format (internal/snapshot) is checksummed and cold-boots
// faster than gob; every loader sniffs the format, so either encoding
// works everywhere. Convert existing bundles with cmd/wbsnap.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"webbrief/internal/corpus"
	"webbrief/internal/embed"
	"webbrief/internal/wb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbtrain: ")
	domains := flag.Int("domains", 8, "number of webpage domains to train on (max 24)")
	pages := flag.Int("pages", 12, "pages generated per domain")
	epochs := flag.Int("epochs", 30, "training epochs")
	hidden := flag.Int("hidden", 24, "LSTM hidden size per direction")
	embDim := flag.Int("embdim", 24, "word embedding width")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "parallel training workers (0 = GOMAXPROCS, 1 = sequential)")
	out := flag.String("out", "model.bin", "output model bundle path")
	format := flag.String("format", "gob", "bundle encoding: gob (legacy) or snapshot (versioned binary, faster cold boot)")
	export := flag.String("export", "", "also export the labelled dataset as JSONL to this path")
	flag.Parse()
	if *format != "gob" && *format != "snapshot" {
		log.Fatalf("unknown -format %q (want gob or snapshot)", *format)
	}

	start := time.Now()
	ds, err := corpus.Generate(corpus.Config{Seed: *seed, PagesPerDomain: *pages, SeenDomains: *domains, UnseenDomains: 0})
	if err != nil {
		log.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	log.Printf("generated %d pages over %d domains (vocab %d)", len(ds.Pages), *domains, v.Size())
	if *export != "" {
		ef, err := os.Create(*export)
		if err != nil {
			log.Fatal(err)
		}
		if err := corpus.ExportJSONL(ef, ds.Pages, true); err != nil {
			log.Fatal(err)
		}
		ef.Close()
		log.Printf("dataset exported to %s", *export)
	}

	// Pre-train GloVe vectors on the corpus so the encoder starts from
	// meaningful co-occurrence structure.
	var docs [][]int
	for _, p := range ds.Pages {
		var doc []int
		for _, s := range p.Sentences {
			doc = append(doc, v.IDs(s.Tokens)...)
		}
		docs = append(docs, doc)
	}
	gcfg := embed.DefaultGloVeConfig(*embDim)
	gcfg.Seed = *seed
	vectors := embed.TrainGloVe(docs, v.Size(), gcfg)
	log.Printf("GloVe pre-training done (%v)", time.Since(start).Round(time.Second))

	train, dev, test := corpus.Split(ds.Pages, *seed)
	trainInsts := wb.NewInstances(train, v, 0)
	devInsts := wb.NewInstances(dev, v, 0)
	testInsts := wb.NewInstances(test, v, 0)

	cfg := wb.DefaultConfig()
	cfg.Hidden = *hidden
	cfg.Seed = *seed
	m := wb.NewJointWB("Joint-WB", wb.NewGloVeEncoder(vectors), v.Size(), cfg)

	tc := wb.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.Seed = *seed
	tc.Workers = *workers
	log.Printf("training Joint-WB on %d pages for %d epochs...", len(trainInsts), *epochs)
	losses := wb.TrainModel(m, trainInsts, tc)
	log.Printf("final training loss %.4f", losses[len(losses)-1])

	report := func(name string, insts []*wb.Instance) {
		prf := wb.EvaluateExtraction(m, insts)
		em, rm := wb.EvaluateTopics(m, insts, v, cfg.BeamSize, cfg.TopicLen)
		sec := wb.EvaluateSections(m, insts)
		log.Printf("%s: attr P %.2f R %.2f F1 %.2f | topic EM %.2f RM %.2f | section acc %.2f",
			name, prf.Precision, prf.Recall, prf.F1, em, rm, sec)
	}
	report("dev ", devInsts)
	report("test", testInsts)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if *format == "snapshot" {
		err = wb.SaveSnapshot(f, m, v)
	} else {
		err = wb.SaveJointWB(f, m, v)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("model bundle written to %s as %s (total %v)", *out, *format, time.Since(start).Round(time.Second))
}
