// Command wbsnap converts model bundles between the legacy gob encoding
// and the versioned binary snapshot format (internal/snapshot), and
// inspects snapshot files. The snapshot format is what the serving tier
// boots and clones from — checksummed sections of little-endian float64
// slabs that decode measurably faster than gob — while gob remains
// readable for migration.
//
// Usage:
//
//	wbsnap -in model.bin -out model.snap     # gob (or snapshot) → snapshot
//	wbsnap -in model.snap -out model.bin -gob  # snapshot (or gob) → gob
//	wbsnap -info model.snap                  # describe a snapshot container
//
// The input format is sniffed from its magic bytes, so -in accepts either
// encoding; wbserve does the same at boot via wb.LoadModelAuto.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"webbrief/internal/snapshot"
	"webbrief/internal/wb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbsnap: ")
	in := flag.String("in", "", "input model bundle (gob or snapshot, sniffed)")
	out := flag.String("out", "", "output path")
	toGob := flag.Bool("gob", false, "write the legacy gob encoding instead of a snapshot")
	info := flag.String("info", "", "describe a snapshot file (sections, sizes, version) and exit")
	flag.Parse()

	if *info != "" {
		if err := describe(*info); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *in == "" || *out == "" {
		log.Fatal("need -in and -out (or -info file.snap); see wbsnap -h")
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	m, v, err := wb.LoadModelAuto(f)
	f.Close()
	if err != nil {
		log.Fatalf("load %s: %v", *in, err)
	}

	o, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer o.Close()
	if *toGob {
		err = wb.SaveJointWB(o, m, v)
	} else {
		err = wb.SaveSnapshot(o, m, v)
	}
	if err != nil {
		log.Fatalf("write %s: %v", *out, err)
	}
	format := "snapshot"
	if *toGob {
		format = "gob"
	}
	log.Printf("%s (vocab %d, hidden %d) written as %s to %s", *in, v.Size(), m.Cfg.Hidden, format, *out)
}

// describe prints a snapshot container's version and section table.
func describe(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !snapshot.SniffMagic(data) {
		return fmt.Errorf("%s is not a snapshot file (no %q magic); convert it first with -in/-out", path, snapshot.Magic)
	}
	s, err := snapshot.Decode(data)
	if err != nil {
		return fmt.Errorf("decode %s: %w", path, err)
	}
	fmt.Printf("%s: snapshot v%d, %d bytes, %d sections\n", path, s.Version(), len(data), len(s.Names()))
	for _, name := range s.Names() {
		payload, _ := s.Section(name)
		fmt.Printf("  %-24s %d bytes\n", name, len(payload))
	}
	return nil
}
