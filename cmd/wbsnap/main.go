// Command wbsnap converts model bundles between the legacy gob encoding
// and the versioned binary snapshot format (internal/snapshot), and
// inspects snapshot files. The snapshot format is what the serving tier
// boots and clones from — checksummed sections of little-endian float64
// slabs that decode measurably faster than gob — while gob remains
// readable for migration.
//
// Usage:
//
//	wbsnap -in model.bin -out model.snap     # gob (or snapshot) → snapshot
//	wbsnap -in model.snap -out model.bin -gob  # snapshot (or gob) → gob
//	wbsnap -in model.snap -out student.snap -student  # distill a float32 student
//	wbsnap -info model.snap                  # describe a snapshot container
//
// The input format is sniffed from its magic bytes, so -in accepts either
// encoding; wbserve does the same at boot via wb.LoadModelAuto.
//
// -student converts the float64 teacher's parameters to a float32 student
// snapshot (jointwb32/* sections, half the parameter bytes) — the artifact
// the cascade's fast tier can be distributed as. Only GloVe-encoder models
// convert. -info distinguishes the two: each parameter section is labelled
// with its element dtype and width.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"webbrief/internal/snapshot"
	"webbrief/internal/wb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbsnap: ")
	in := flag.String("in", "", "input model bundle (gob or snapshot, sniffed)")
	out := flag.String("out", "", "output path")
	toGob := flag.Bool("gob", false, "write the legacy gob encoding instead of a snapshot")
	student := flag.Bool("student", false, "write a float32 student snapshot converted from the float64 model")
	info := flag.String("info", "", "describe a snapshot file (sections, sizes, version) and exit")
	flag.Parse()

	if *info != "" {
		if err := describe(*info); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *in == "" || *out == "" {
		log.Fatal("need -in and -out (or -info file.snap); see wbsnap -h")
	}
	if *toGob && *student {
		log.Fatal("-gob and -student are mutually exclusive")
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	m, v, err := wb.LoadModelAuto(f)
	f.Close()
	if err != nil {
		log.Fatalf("load %s: %v", *in, err)
	}

	o, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer o.Close()
	switch {
	case *toGob:
		err = wb.SaveJointWB(o, m, v)
	case *student:
		var sm *wb.JointWB32
		if sm, err = wb.ConvertJointWB(m); err == nil {
			err = wb.SaveStudentSnapshot(o, sm, v)
		}
	default:
		err = wb.SaveSnapshot(o, m, v)
	}
	if err != nil {
		log.Fatalf("write %s: %v", *out, err)
	}
	format := "snapshot"
	switch {
	case *toGob:
		format = "gob"
	case *student:
		format = "float32 student snapshot"
	}
	log.Printf("%s (vocab %d, hidden %d) written as %s to %s", *in, v.Size(), m.Cfg.Hidden, format, *out)
}

// describe prints a snapshot container's version and section table.
func describe(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !snapshot.SniffMagic(data) {
		return fmt.Errorf("%s is not a snapshot file (no %q magic); convert it first with -in/-out", path, snapshot.Magic)
	}
	s, err := snapshot.Decode(data)
	if err != nil {
		return fmt.Errorf("decode %s: %w", path, err)
	}
	fmt.Printf("%s: snapshot v%d, %d bytes, %d sections\n", path, s.Version(), len(data), len(s.Names()))
	for _, name := range s.Names() {
		payload, _ := s.Section(name)
		fmt.Printf("  %-24s %-18s %d bytes\n", name, sectionDtype(name), len(payload))
	}
	return nil
}

// sectionDtype labels a section with its element encoding, keyed by the
// naming convention: jointwb/* sections hold float64 slabs, jointwb32/*
// hold float32, and meta sections are varint-framed headers.
func sectionDtype(name string) string {
	switch name {
	case "jointwb/params":
		return "float64 (8B/elem)"
	case "jointwb32/params":
		return "float32 (4B/elem)"
	case "jointwb/meta", "jointwb32/meta":
		return "varint meta"
	}
	return "opaque"
}
