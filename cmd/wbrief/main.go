// Command wbrief produces a hierarchical webpage briefing (Fig. 1 of the
// paper) for an HTML file: the broad topic at the top, the extracted key
// attributes below it.
//
// Usage:
//
//	wbrief -model model.bin page.html
//	wbrief -model model.bin -text page.html   # also dump the rendered visible text
//
// Train a model bundle first with cmd/wbtrain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"webbrief/internal/htmldom"
	"webbrief/internal/wb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbrief: ")
	modelPath := flag.String("model", "model.bin", "model bundle from wbtrain")
	showText := flag.Bool("text", false, "also print the extracted visible text")
	asJSON := flag.Bool("json", false, "emit the briefing as JSON instead of the tree rendering")
	beam := flag.Int("beam", 8, "beam width for topic decoding")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: wbrief -model model.bin page.html")
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatalf("open model: %v (train one with wbtrain)", err)
	}
	m, v, err := wb.LoadJointWB(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	html, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	doc := htmldom.Parse(string(html))
	if *showText {
		fmt.Println("--- visible text ---")
		fmt.Println(htmldom.VisibleText(doc))
		fmt.Println("--------------------")
	}
	if title := htmldom.Title(doc); title != "" {
		fmt.Printf("Page title: %s\n\n", title)
	}

	inst := wb.InstanceFromHTML(string(html), v, 0)
	if inst.NumSents() == 0 {
		log.Fatal("no visible text found in page")
	}
	brief := wb.MakeBrief(m, inst, v, *beam)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(brief); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(brief.String())
}
