// Command wbgate is the sharded front tier of the briefing service: an
// HTTP gateway that consistent-hash routes briefing requests by page
// domain across a fleet of wbserve backends (internal/gateway), so one
// domain's pages concentrate on one backend's content-addressed cache and
// per-domain policy.
//
// Usage:
//
//	wbserve -model model.bin -addr :8081 &
//	wbserve -model model.bin -addr :8082 &
//	wbgate -backends localhost:8081,localhost:8082 -addr :8080
//	curl -s --data-binary @page.html 'http://localhost:8080/brief?src=https://example.com/page'
//	curl -s http://localhost:8080/metrics
//
// Each backend gets a bounded connection pool, a circuit breaker
// (-breaker-threshold consecutive failures eject it; /healthz probes on
// -probe-interval readmit it after the cooldown), and failover: a request
// whose home backend is ejected, saturated, or failing is retried on the
// next candidates around the ring, so single-backend faults stay invisible
// to clients.
//
// POST /admin/reload (or SIGHUP) drives a rolling zero-downtime hot model
// reload across the fleet — each backend's /admin/reload in turn, one at a
// time, so at most one backend is warming a shadow pool while the rest
// serve. /metrics reports per-backend requests, errors, breaker state and
// model generation; /healthz aggregates fleet health. SIGINT/SIGTERM drain
// gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webbrief/internal/gateway"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wbgate: ")
	backendsFlag := flag.String("backends", "", "comma-separated wbserve backends, host:port each (required)")
	addr := flag.String("addr", ":8080", "listen address")
	vnodes := flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per backend on the hash ring")
	maxConns := flag.Int("max-conns", 32, "max concurrent relays per backend (overflow waits at the gateway)")
	attempts := flag.Int("attempts", 0, "max distinct backends tried per request (0 = the whole fleet)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that eject a backend from rotation")
	breakerCooldown := flag.Duration("breaker-cooldown", 500*time.Millisecond, "ejection to first readmission probe")
	probeEvery := flag.Duration("probe-interval", 100*time.Millisecond, "health probe cadence for ejected backends")
	probeOK := flag.Int("probe-successes", 2, "consecutive clean probes required to readmit a backend")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, failover attempts included (0 = none)")
	maxBody := flag.Int64("maxbody", gateway.DefaultMaxBodyBytes, "request body limit in bytes (over-limit bodies get 413)")
	reloadTimeout := flag.Duration("reload-timeout", 60*time.Second, "per-backend deadline when driving a fleet reload")
	drainWait := flag.Duration("drain", 30*time.Second, "max time to drain in-flight relays on shutdown")
	reloadSignal := flag.Bool("reload-signal", true, "drive a rolling fleet model reload on SIGHUP (POST /admin/reload always works)")
	flag.Parse()

	var backends []string
	for _, b := range strings.Split(*backendsFlag, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	if len(backends) == 0 {
		log.Fatal("no backends: pass -backends host:port[,host:port...]")
	}

	g, err := gateway.New(gateway.Config{
		Backends:           backends,
		VNodes:             *vnodes,
		MaxConnsPerBackend: *maxConns,
		Attempts:           *attempts,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		ProbeInterval:      *probeEvery,
		ProbeSuccesses:     *probeOK,
		Timeout:            *timeout,
		ReloadTimeout:      *reloadTimeout,
		MaxBodyBytes:       *maxBody,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: g.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *reloadSignal {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		//wbcheck:ignore goshutdown -- reload listener lives for the whole process; it exits with it
		go func() {
			for range hup {
				start := time.Now()
				rep, err := g.FleetReload(context.Background())
				if err != nil {
					log.Printf("fleet reload: %v", err)
					continue
				}
				for _, b := range rep.Backends {
					if b.Error != "" {
						log.Printf("reload %s: %s (old model keeps serving there)", b.Backend, b.Error)
					}
				}
				log.Printf("fleet reload drove in %v: %d/%d backends reloaded, fleet generation %d",
					time.Since(start).Round(time.Millisecond), rep.Reloaded, g.Ring().Size(), rep.FleetGeneration)
			}
		}()
	}

	errc := make(chan error, 1)
	//wbcheck:ignore goshutdown -- accept loop lives for the whole process; ListenAndServe returns when Shutdown below closes the listener, and the buffered errc send never leaks it
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("routing briefings on %s across %d backends: %v (POST HTML to /brief; /healthz, /metrics, /admin/reload)",
		*addr, g.Ring().Size(), g.Ring().Backends())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("draining (max %v)...", *drainWait)
	g.BeginShutdown() // /healthz now 503; new briefings refused
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("drained, bye")
}
