// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV) at smoke scale — one benchmark per experiment, plus end-to-end
// pipeline benchmarks. The reported numbers for EXPERIMENTS.md come from
// `go run ./cmd/wbexp -scale full`; these benchmarks exist so `go test
// -bench=.` exercises every experiment code path and tracks its cost.
package webbrief_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webbrief/internal/corpus"
	"webbrief/internal/experiments"
	"webbrief/internal/serve"
	"webbrief/internal/tensor"
	"webbrief/internal/textproc"
	"webbrief/internal/wb"
)

// benchSetup builds a fresh smoke-scale experiment setup (corpus, GloVe,
// MLM pre-training). Each table benchmark rebuilds it inside the timed loop
// so iterations are independent (the setup caches trained systems).
func benchSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	s, err := experiments.NewSetup(experiments.DefaultOptions(experiments.ScaleSmoke))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchTable times one full experiment regeneration, setup included.
func benchTable(b *testing.B, id string) {
	for i := 0; i < b.N; i++ {
		s := benchSetup(b)
		if _, err := s.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table IV (distillation variants, topic
// generation on unseen/seen/all domains).
func BenchmarkTable4(b *testing.B) { benchTable(b, "4") }

// BenchmarkTable5 regenerates Table V (distillation across teacher models).
func BenchmarkTable5(b *testing.B) { benchTable(b, "5") }

// BenchmarkTable6 regenerates Table VI (single-task baselines, attribute
// extraction).
func BenchmarkTable6(b *testing.B) { benchTable(b, "6") }

// BenchmarkTable7 regenerates Table VII (single-task baselines, topic
// generation).
func BenchmarkTable7(b *testing.B) { benchTable(b, "7") }

// BenchmarkTable8 regenerates Table VIII (joint baselines, attribute
// extraction).
func BenchmarkTable8(b *testing.B) { benchTable(b, "8") }

// BenchmarkTable9 regenerates Table IX (joint baselines, topic generation).
func BenchmarkTable9(b *testing.B) { benchTable(b, "9") }

// BenchmarkTable10 regenerates Table X (simulated human evaluation).
func BenchmarkTable10(b *testing.B) { benchTable(b, "10") }

// BenchmarkDatasetQuality regenerates the §IV-A2 dataset-quality study.
func BenchmarkDatasetQuality(b *testing.B) { benchTable(b, "quality") }

// BenchmarkSensitivity regenerates the §IV-D content-sensitivity study
// (synthetic two-topic pages at 50-50 / 70-30 / 30-70 proportions).
func BenchmarkSensitivity(b *testing.B) { benchTable(b, "sensitivity") }

// BenchmarkHTMLToInstance times the full ingestion pipeline for one page:
// HTML parse → visible text → normalisation → instance encoding.
func BenchmarkHTMLToInstance(b *testing.B) {
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 1, SeenDomains: 4, UnseenDomains: 0})
	if err != nil {
		b.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	html := ds.Pages[0].HTML
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wb.InstanceFromHTML(html, v, 0)
	}
}

// BenchmarkBrief times producing one hierarchical briefing (forward pass,
// tag decode, section decode, beam-search topic decode) with an untrained
// small Joint-WB — the inference-latency figure a browser integration
// would care about.
func BenchmarkBrief(b *testing.B) {
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 2, SeenDomains: 2, UnseenDomains: 0})
	if err != nil {
		b.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	insts := wb.NewInstances(ds.Pages, v, 0)
	enc := wb.NewGloVeEncoder(tensor.Randn(v.Size(), 16, 0.1, rand.New(rand.NewSource(1))))
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	m := wb.NewJointWB("bench", enc, v.Size(), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wb.MakeBrief(m, insts[i%len(insts)], v, 4)
	}
}

// serveBenchModel builds the small Joint-WB + page used by the serving
// benchmarks (untrained weights; serving cost is weight-independent).
func serveBenchModel(b *testing.B) (*wb.JointWB, *textproc.Vocab, string) {
	b.Helper()
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 2, SeenDomains: 2, UnseenDomains: 0})
	if err != nil {
		b.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	enc := wb.NewGloVeEncoder(tensor.Randn(v.Size(), 16, 0.1, rand.New(rand.NewSource(1))))
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	m := wb.NewJointWB("bench", enc, v.Size(), cfg)
	return m, v, ds.Pages[0].HTML
}

// benchHTTPPath drives handler with GOMAXPROCS client goroutines through
// the full in-process HTTP path (request parse, admission, briefing, JSON
// response) and fails on any non-200.
func benchHTTPPath(b *testing.B, handler http.Handler, html string) {
	b.Helper()
	var bad atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := httptest.NewRequest(http.MethodPost, "/brief", strings.NewReader(html))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				bad.Add(1)
			}
		}
	})
	b.StopTimer()
	if n := bad.Load(); n > 0 {
		b.Fatalf("%d requests failed", n)
	}
}

// BenchmarkServeBrief measures briefing throughput through the concurrent
// serving subsystem (internal/serve) at two pool sizes: a single replica
// (all clients contend for one model) and GOMAXPROCS replicas (each client
// can hold its own). Run with -cpu N>1 to see the multi-replica scaling;
// compare against BenchmarkServeBriefSerialMutex, the pre-pool wb.Briefer
// path that serialises every forward behind one lock.
func BenchmarkServeBrief(b *testing.B) {
	bench := func(replicas int) func(*testing.B) {
		return func(b *testing.B) {
			m, v, html := serveBenchModel(b)
			srv, err := serve.New(m, v, serve.Config{
				Replicas: replicas, QueueDepth: 1 << 16, BeamWidth: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm on the benched page so every replica's arena, pack and
			// beam buffers hit steady state before the timer starts; the
			// loop then measures the allocation-free path, not first-use
			// buffer growth on whichever replicas the scheduler picks.
			if err := srv.Pool().Warm(html); err != nil {
				b.Fatal(err)
			}
			benchHTTPPath(b, srv.Handler(), html)
		}
	}
	b.Run("replicas=1", bench(1))
	b.Run("replicas=max", bench(runtime.GOMAXPROCS(0)))
}

// benchHTTPClients drives handler with exactly `clients` concurrent client
// goroutines sharing b.N requests — unlike RunParallel, the client count is
// independent of GOMAXPROCS, so throughput-vs-concurrency curves compare
// cleanly across -cpu values.
func benchHTTPClients(b *testing.B, handler http.Handler, html string, clients int) {
	b.Helper()
	var bad atomic.Int64
	var iter atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter.Add(1) <= int64(b.N) {
				req := httptest.NewRequest(http.MethodPost, "/brief", strings.NewReader(html))
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					bad.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if n := bad.Load(); n > 0 {
		b.Fatalf("%d requests failed", n)
	}
}

// BenchmarkServeBriefConcurrency is the continuous-batching scaling grid:
// req/sec at 1, 4 and 16 concurrent clients with micro-batching off
// (window=0, the exact per-request path) and on (500µs window). With
// batching on, req/sec should improve as client concurrency grows —
// concurrent requests coalesce into B-row fused forwards — while the
// clients=1 cells measure the price of an empty window. Results land in
// BENCH_4.json via scripts/bench.sh.
func BenchmarkServeBriefConcurrency(b *testing.B) {
	for _, mode := range []struct {
		name   string
		window time.Duration
	}{{"batch=off", 0}, {"batch=on", 500 * time.Microsecond}} {
		for _, clients := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode.name, clients), func(b *testing.B) {
				m, v, html := serveBenchModel(b)
				srv, err := serve.New(m, v, serve.Config{
					Replicas: 1, QueueDepth: 1 << 16, BeamWidth: 4,
					BatchWindow: mode.window, BatchMax: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := srv.Warm(html); err != nil {
					b.Fatal(err)
				}
				benchHTTPClients(b, srv.Handler(), html, clients)
			})
		}
	}
}

// BenchmarkServeBriefCascade compares the full-HTTP briefing path on the
// float64 teacher pool against the cascade's float32 student tier. The
// cascade cell pins ConfidenceThreshold to a tiny positive value (zero
// would be defaulted to 0.5 by serve.New) so every request is answered by
// the student and the cell measures the pure student fast path — the
// serving-tier counterpart of internal/wb's BenchmarkCascadeTiers, with
// parse, admission and JSON encoding included. Escalation-mix behaviour is
// covered by the check.sh cascade smoke and EXPERIMENTS.md, not here.
func BenchmarkServeBriefCascade(b *testing.B) {
	bench := func(cascade bool) func(*testing.B) {
		return func(b *testing.B) {
			m, v, html := serveBenchModel(b)
			cfg := serve.Config{Replicas: 1, QueueDepth: 1 << 16, BeamWidth: 4}
			if cascade {
				cfg.Cascade = true
				cfg.ConfidenceThreshold = 1e-12
			}
			srv, err := serve.New(m, v, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.Pool().Warm(html); err != nil {
				b.Fatal(err)
			}
			benchHTTPPath(b, srv.Handler(), html)
			if cascade {
				if esc := srv.Metrics().CascadeTeacher.Load(); esc > 0 {
					b.Fatalf("%d requests escalated to the teacher; the cell measured a tier mix", esc)
				}
			}
		}
	}
	b.Run("teacher-f64", bench(false))
	b.Run("student-f32", bench(true))
}

// BenchmarkServeBriefSerialMutex is the before-picture: the wb.Briefer
// handler whose single mutex serialises every briefing, under the same
// concurrent client load as BenchmarkServeBrief.
func BenchmarkServeBriefSerialMutex(b *testing.B) {
	m, v, html := serveBenchModel(b)
	benchHTTPPath(b, wb.NewBriefer(m, v, 4, 0), html)
}

// BenchmarkServeBriefCacheHit measures the content-addressed cache's hit
// path through the full HTTP surface: one priming request fills the cache,
// then every timed request is a raw-key hit — one SHA-256 and a shard-locked
// probe instead of parse + encode + beam decode. Compare against the
// replicas=1 cell of BenchmarkServeBrief for the hit-vs-miss latency gap;
// results land in BENCH_5.json via scripts/bench.sh.
func BenchmarkServeBriefCacheHit(b *testing.B) {
	m, v, html := serveBenchModel(b)
	srv, err := serve.New(m, v, serve.Config{
		Replicas: 1, QueueDepth: 1 << 16, BeamWidth: 4, CacheCapacity: 1 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Pool().Warm(html); err != nil {
		b.Fatal(err)
	}
	// Prime: the one miss computes and fills the cache.
	req := httptest.NewRequest(http.MethodPost, "/brief", strings.NewReader(html))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("priming request failed: %d", rec.Code)
	}
	benchHTTPPath(b, srv.Handler(), html)
	if hits := srv.Metrics().CacheHits.Load(); hits < int64(b.N) {
		b.Fatalf("cache hits %d < %d timed requests; the benchmark measured misses", hits, b.N)
	}
}

// BenchmarkTeacherEpoch times one training epoch of the Joint-WB teacher at
// smoke scale — the dominant cost of every experiment.
func BenchmarkTeacherEpoch(b *testing.B) {
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 2, SeenDomains: 3, UnseenDomains: 0})
	if err != nil {
		b.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	insts := wb.NewInstances(ds.Pages, v, 0)
	enc := wb.NewGloVeEncoder(tensor.Randn(v.Size(), 16, 0.1, rand.New(rand.NewSource(1))))
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	m := wb.NewJointWB("bench", enc, v.Size(), cfg)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wb.TrainModel(m, insts, tc)
	}
}

// teacherEpochBench times one Joint-WB training epoch under the given
// batching/worker configuration — the knobs of the data-parallel engine.
func teacherEpochBench(b *testing.B, batchSize, workers int) {
	ds, err := corpus.Generate(corpus.Config{Seed: 1, PagesPerDomain: 2, SeenDomains: 3, UnseenDomains: 0})
	if err != nil {
		b.Fatal(err)
	}
	v := corpus.BuildVocab(ds.Pages)
	insts := wb.NewInstances(ds.Pages, v, 0)
	enc := wb.NewGloVeEncoder(tensor.Randn(v.Size(), 16, 0.1, rand.New(rand.NewSource(1))))
	cfg := wb.DefaultConfig()
	cfg.Hidden = 16
	m := wb.NewJointWB("bench", enc, v.Size(), cfg)
	tc := wb.DefaultTrainConfig()
	tc.Epochs = 1
	tc.BatchSize = batchSize
	tc.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wb.TrainModel(m, insts, tc)
	}
}

// BenchmarkTeacherEpochBatched is the sequential reference with
// gradient-accumulation batches of 8 on the arena-tape engine.
func BenchmarkTeacherEpochBatched(b *testing.B) { teacherEpochBench(b, 8, 1) }

// BenchmarkTeacherEpochParallel is the same workload fanned across
// GOMAXPROCS workers (Workers: 0) — compare against Batched for the
// data-parallel speedup on multi-core machines.
func BenchmarkTeacherEpochParallel(b *testing.B) { teacherEpochBench(b, 8, 0) }

// BenchmarkAttrNames regenerates the attribute-name prediction extension
// (§V future work).
func BenchmarkAttrNames(b *testing.B) { benchTable(b, "names") }

// BenchmarkHierarchy regenerates the multi-level extraction extension with
// its combined-signal ablation (§III-C sketch).
func BenchmarkHierarchy(b *testing.B) { benchTable(b, "hier") }

// BenchmarkAblations regenerates the design-choice ablation studies
// (Markov dependency, UD soft weight, beam width).
func BenchmarkAblations(b *testing.B) { benchTable(b, "ablation") }
