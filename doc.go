// Package webbrief is a pure-Go (stdlib-only) reproduction of "Automatic
// Webpage Briefing" (Dai, Zhang, Qi — ICDE 2021): the webpage-briefing task,
// the Joint-WB model, the Dual-Distill and Tri-Distill knowledge-distillation
// methods, every baseline the paper evaluates, and a benchmark harness that
// regenerates every table of the paper's evaluation section.
//
// The public surface is the three commands (cmd/wbrief, cmd/wbtrain,
// cmd/wbexp) and the runnable examples under examples/. The implementation
// lives in internal/: tensor math and autodiff (tensor, ag), neural layers
// (nn), optimizers (opt), an HTML renderer (htmldom), text preprocessing and
// WordPiece (textproc), embeddings (embed), the synthetic labelled corpus
// (corpus), the core models (wb), distillation (distill), baselines
// (baselines), metrics (eval) and the experiment drivers (experiments).
//
// The repository's contracts are machine-enforced by cmd/wbcheck, a
// stdlib-only static-analysis suite built on internal/analysis: per-package
// AST/type passes for determinism and numeric safety, plus a cross-package
// facts layer (serialized per-package summaries read by dependents, in the
// spirit of go/analysis facts) whose blockfacts call-graph summary of
// blocking and shutdown behaviour powers the concurrency passes
// (goshutdown, lockhold, poolbalance, metricpart).
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// paper-to-module mapping, and EXPERIMENTS.md for reproduced-vs-paper
// results.
package webbrief
